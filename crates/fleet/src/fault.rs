//! Deterministic fault injection for fleet campaigns.
//!
//! Long sharded campaigns must survive worker death — and that claim is
//! only testable if failures can be *injected* at precise, reproducible
//! points and the recovery replayed deterministically. A [`FaultPlan`]
//! is a small list of [`Fault`]s, each naming a shard, a trigger point
//! (a completed-cell count) and an attempt gate, threaded through both
//! coordinators:
//!
//! * **in-process** ([`run_fleet`](crate::coordinator::run_fleet)) —
//!   the coordinator consults the plan directly
//!   ([`FleetConfig::fault`](crate::coordinator::FleetConfig));
//! * **spawned** ([`run_fleet_spawned`](crate::coordinator::run_fleet_spawned))
//!   — shard-worker subprocesses inherit the [`FAULT_ENV`]
//!   (`GRIFFIN_FAULT`) environment variable and arm their own faults;
//!   the coordinator tells each respawn its attempt number via
//!   [`ATTEMPT_ENV`], so a fault gated on `attempt=0` fires exactly
//!   once and the retry recovers.
//!
//! The plan has a compact textual form (what the env var carries),
//! faults separated by `;`:
//!
//! ```text
//! kill:shard=1:after=2            worker 1 dies after 2 completions (attempt 0)
//! stall:shard=0:after=1:attempt=any  worker 0 hangs silently on every attempt
//! corrupt-cache:shard=2           shard 2's cache is torn mid-write
//! truncate-journal:after=3        the journal loses its tail mid-append
//! ```
//!
//! Determinism: "after N completions" is implemented by *truncating the
//! shard's work list* to its first N remaining cells (grid order), so
//! the set of journaled cells at the moment of death is a pure function
//! of the plan — no racing a concurrent executor.

use std::fmt;
use std::io;
use std::path::Path;

/// Environment variable carrying a [`FaultPlan`] in its textual form.
/// Spawned shard workers inherit it from the coordinator's environment.
pub const FAULT_ENV: &str = "GRIFFIN_FAULT";

/// Environment variable the coordinator sets on each spawned worker:
/// the shard's attempt number (0 on the first launch, incremented per
/// retry). Gates faults so an injected death is not re-injected forever.
pub const ATTEMPT_ENV: &str = "GRIFFIN_FLEET_ATTEMPT";

/// Which shard attempts a fault fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptGate {
    /// Fire only on this attempt number (default: attempt 0 — the fault
    /// happens once, the retry runs clean).
    Only(usize),
    /// Fire on every attempt (drives the retries-exhausted path).
    Any,
}

impl AttemptGate {
    /// Whether the gate admits `attempt`.
    pub fn admits(self, attempt: usize) -> bool {
        match self {
            AttemptGate::Only(a) => a == attempt,
            AttemptGate::Any => true,
        }
    }
}

/// One injectable failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The worker for `shard` dies abruptly after completing (and
    /// streaming) `after` of its remaining cells: no `shard_done`, a
    /// torn final protocol line, a nonzero exit. Exercises the
    /// coordinator's retry path.
    Kill {
        /// Shard whose worker dies.
        shard: usize,
        /// Remaining-cell completions before death.
        after: usize,
        /// Attempt gate.
        attempt: AttemptGate,
    },
    /// The worker for `shard` goes silent after `after` completions —
    /// the process stays alive but emits nothing (delayed/lost
    /// heartbeats). Exercises the coordinator's heartbeat-timeout
    /// liveness detection; spawn mode only (the in-process coordinator
    /// treats it as [`Fault::Kill`], since an in-process shard cannot
    /// hang without hanging the campaign).
    Stall {
        /// Shard whose worker stalls.
        shard: usize,
        /// Remaining-cell completions before the silence.
        after: usize,
        /// Attempt gate.
        attempt: AttemptGate,
    },
    /// The shard's cache directory is torn as if the worker died
    /// mid-write: its newest entry is truncated and a partial `.tmp`
    /// file is left behind (see [`corrupt_shard_cache`]). Exercises the
    /// merge's invalid-entry skip and the final replay's re-simulation.
    CorruptCache {
        /// Shard whose cache is torn.
        shard: usize,
        /// Attempt gate.
        attempt: AttemptGate,
    },
    /// The coordinator "crashes" mid-append: after the `after`-th
    /// journal append (campaign-wide), a torn, newline-less half entry
    /// is written and the campaign aborts with a terminal
    /// `campaign_failed`. Exercises `--resume`'s truncation tolerance.
    TruncateJournal {
        /// Campaign-wide journal appends before the torn write.
        after: usize,
    },
}

/// Fault-plan parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan error: {}", self.msg)
    }
}

impl std::error::Error for FaultError {}

fn fail<T>(msg: impl Into<String>) -> Result<T, FaultError> {
    Err(FaultError { msg: msg.into() })
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gate = |f: &mut fmt::Formatter<'_>, g: AttemptGate| match g {
            AttemptGate::Only(0) => Ok(()),
            AttemptGate::Only(a) => write!(f, ":attempt={a}"),
            AttemptGate::Any => write!(f, ":attempt=any"),
        };
        match *self {
            Fault::Kill {
                shard,
                after,
                attempt,
            } => {
                write!(f, "kill:shard={shard}:after={after}")?;
                gate(f, attempt)
            }
            Fault::Stall {
                shard,
                after,
                attempt,
            } => {
                write!(f, "stall:shard={shard}:after={after}")?;
                gate(f, attempt)
            }
            Fault::CorruptCache { shard, attempt } => {
                write!(f, "corrupt-cache:shard={shard}")?;
                gate(f, attempt)
            }
            Fault::TruncateJournal { after } => write!(f, "truncate-journal:after={after}"),
        }
    }
}

/// A deterministic list of faults to inject into one campaign.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The faults, in plan order.
    pub faults: Vec<Fault>,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// `key=value` fields of one fault clause, after the kind token.
#[derive(Default)]
struct Fields {
    shard: Option<usize>,
    after: Option<usize>,
    attempt: Option<AttemptGate>,
}

impl Fields {
    fn parse(parts: &mut std::str::Split<'_, char>, kind: &str) -> Result<Fields, FaultError> {
        let mut f = Fields::default();
        for part in parts {
            let Some((key, value)) = part.split_once('=') else {
                return fail(format!("`{kind}`: expected key=value, got `{part}`"));
            };
            let num = || -> Result<usize, FaultError> {
                value.parse().map_err(|_| FaultError {
                    msg: format!("`{kind}`: bad number `{value}` for `{key}`"),
                })
            };
            match key {
                "shard" => f.shard = Some(num()?),
                "after" => f.after = Some(num()?),
                "attempt" if value == "any" => f.attempt = Some(AttemptGate::Any),
                "attempt" => f.attempt = Some(AttemptGate::Only(num()?)),
                other => return fail(format!("`{kind}`: unknown field `{other}`")),
            }
        }
        Ok(f)
    }

    fn shard(&self, kind: &str) -> Result<usize, FaultError> {
        self.shard
            .map_or_else(|| fail(format!("`{kind}` needs shard=N")), Ok)
    }

    fn after(&self, kind: &str) -> Result<usize, FaultError> {
        self.after
            .map_or_else(|| fail(format!("`{kind}` needs after=N")), Ok)
    }

    fn gate(&self) -> AttemptGate {
        self.attempt.unwrap_or(AttemptGate::Only(0))
    }
}

impl FaultPlan {
    /// Parses the textual form (see the module docs). `delay-heartbeats`
    /// is accepted as an alias of `stall`.
    ///
    /// # Errors
    ///
    /// [`FaultError`] on an unknown fault kind, a malformed field, or a
    /// missing required field.
    pub fn parse(s: &str) -> Result<FaultPlan, FaultError> {
        let mut faults = Vec::new();
        for clause in s.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let mut parts = clause.split(':');
            let kind = parts.next().expect("split yields at least one part");
            let f = Fields::parse(&mut parts, kind)?;
            faults.push(match kind {
                "kill" => Fault::Kill {
                    shard: f.shard(kind)?,
                    after: f.after(kind)?,
                    attempt: f.gate(),
                },
                "stall" | "delay-heartbeats" => Fault::Stall {
                    shard: f.shard(kind)?,
                    after: f.after(kind)?,
                    attempt: f.gate(),
                },
                "corrupt-cache" => Fault::CorruptCache {
                    shard: f.shard(kind)?,
                    attempt: f.gate(),
                },
                "truncate-journal" => Fault::TruncateJournal {
                    after: f.after(kind)?,
                },
                other => return fail(format!("unknown fault `{other}`")),
            });
        }
        if faults.is_empty() {
            return fail("empty fault plan");
        }
        Ok(FaultPlan { faults })
    }

    /// Completions before a [`Fault::Kill`] matching (`shard`,
    /// `attempt`) fires, if any.
    pub fn kill_after(&self, shard: usize, attempt: usize) -> Option<usize> {
        self.faults.iter().find_map(|f| match *f {
            Fault::Kill {
                shard: s,
                after,
                attempt: g,
            } if s == shard && g.admits(attempt) => Some(after),
            _ => None,
        })
    }

    /// Completions before a [`Fault::Stall`] matching (`shard`,
    /// `attempt`) fires, if any.
    pub fn stall_after(&self, shard: usize, attempt: usize) -> Option<usize> {
        self.faults.iter().find_map(|f| match *f {
            Fault::Stall {
                shard: s,
                after,
                attempt: g,
            } if s == shard && g.admits(attempt) => Some(after),
            _ => None,
        })
    }

    /// Whether a [`Fault::CorruptCache`] matches (`shard`, `attempt`).
    pub fn corrupts_cache(&self, shard: usize, attempt: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(*f, Fault::CorruptCache { shard: s, attempt: g }
                if s == shard && g.admits(attempt))
        })
    }

    /// Campaign-wide journal appends before a [`Fault::TruncateJournal`]
    /// fires, if any.
    pub fn journal_truncate_after(&self) -> Option<usize> {
        self.faults.iter().find_map(|f| match *f {
            Fault::TruncateJournal { after } => Some(after),
            _ => None,
        })
    }
}

/// Reads a [`FaultPlan`] from [`FAULT_ENV`] (`None` when unset/blank).
///
/// # Errors
///
/// [`FaultError`] when the variable is set but unparsable — a typoed
/// chaos experiment must fail loudly, not silently run a clean
/// campaign.
pub fn plan_from_env() -> Result<Option<FaultPlan>, FaultError> {
    match std::env::var(FAULT_ENV) {
        Ok(s) if !s.trim().is_empty() => FaultPlan::parse(&s).map(Some),
        _ => Ok(None),
    }
}

/// Reads the attempt number from [`ATTEMPT_ENV`] (0 when unset — a
/// worker launched outside a retrying coordinator is on its first
/// attempt).
pub fn attempt_from_env() -> usize {
    std::env::var(ATTEMPT_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Tears a shard cache directory the way a worker killed mid-write
/// would: the lexicographically last `.json` entry is truncated to half
/// its bytes (an unparsable torn rename target) and a partial
/// `fault.tmp.0.0` temp file is left behind. Recovery is the normal
/// pipeline: `merge_dirs` skips both, and the final replay re-simulates
/// whatever the torn entry held.
///
/// # Errors
///
/// Propagates filesystem errors; a missing or empty directory only gets
/// the stray temp file.
pub fn corrupt_shard_cache(dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    if let Some(victim) = entries.last() {
        let len = std::fs::metadata(victim)?.len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(victim)?
            .set_len(len / 2)?;
    }
    std::fs::write(dir.join("fault.tmp.0.0"), "{\"speedup\":")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_roundtrip_through_their_textual_form() {
        let plans = [
            "kill:shard=1:after=2",
            "stall:shard=0:after=1:attempt=any",
            "kill:shard=3:after=0:attempt=2",
            "corrupt-cache:shard=2",
            "truncate-journal:after=3",
            "kill:shard=1:after=2;corrupt-cache:shard=1;truncate-journal:after=9",
        ];
        for text in plans {
            let plan = FaultPlan::parse(text).unwrap();
            assert_eq!(plan.to_string(), text, "canonical form is stable");
            assert_eq!(FaultPlan::parse(&plan.to_string()), Ok(plan));
        }
        // The alias parses to the canonical `stall` spelling.
        let alias = FaultPlan::parse("delay-heartbeats:shard=1:after=0").unwrap();
        assert_eq!(alias.to_string(), "stall:shard=1:after=0");
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "",
            "  ;  ",
            "warp-core-breach:shard=1",
            "kill:shard=1",              // missing after
            "kill:after=2",              // missing shard
            "kill:shard=x:after=2",      // bad number
            "kill:shard=1:after=2:zap",  // not key=value
            "kill:shard=1:after=2:k=v",  // unknown field
            "truncate-journal:shard=1",  // missing after
            "corrupt-cache:attempt=any", // missing shard
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn queries_respect_shard_and_attempt_gates() {
        let plan =
            FaultPlan::parse("kill:shard=1:after=2;stall:shard=0:after=1:attempt=any").unwrap();
        assert_eq!(plan.kill_after(1, 0), Some(2), "default gate is attempt 0");
        assert_eq!(plan.kill_after(1, 1), None, "retry runs clean");
        assert_eq!(plan.kill_after(0, 0), None, "wrong shard");
        assert_eq!(
            plan.stall_after(0, 5),
            Some(1),
            "`any` admits every attempt"
        );
        assert!(!plan.corrupts_cache(1, 0));
        assert_eq!(plan.journal_truncate_after(), None);

        let plan = FaultPlan::parse("corrupt-cache:shard=2;truncate-journal:after=7").unwrap();
        assert!(plan.corrupts_cache(2, 0));
        assert!(!plan.corrupts_cache(2, 1));
        assert_eq!(plan.journal_truncate_after(), Some(7));
    }

    #[test]
    fn corrupt_shard_cache_tears_the_newest_entry_and_drops_a_tmp() {
        let dir = std::env::temp_dir().join(format!(
            "griffin-fault-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("aaaa.json"), "{\"ok\":1}").unwrap();
        std::fs::write(dir.join("zzzz.json"), "{\"ok\":2,\"pad\":\"xxxx\"}").unwrap();
        corrupt_shard_cache(&dir).unwrap();
        let torn = std::fs::read_to_string(dir.join("zzzz.json")).unwrap();
        assert!(torn.len() < "{\"ok\":2,\"pad\":\"xxxx\"}".len());
        assert_eq!(
            std::fs::read_to_string(dir.join("aaaa.json")).unwrap(),
            "{\"ok\":1}",
            "only the lexicographically last entry is torn"
        );
        assert!(dir.join("fault.tmp.0.0").exists());
        // An empty (or missing) cache dir still gets the stray tmp.
        let empty = dir.join("nested");
        corrupt_shard_cache(&empty).unwrap();
        assert!(empty.join("fault.tmp.0.0").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
