//! Shared JSONL line framing.
//!
//! Every append-only stream in the workspace — the fleet event stream,
//! the campaign journal, and the serve daemon's wire protocol — writes
//! one JSON object per line and is read back through the torn-tail rule
//! in [`crate::tail`]. This module is the single writer-side half of
//! that contract: a record and its terminating newline are emitted as
//! **one** `write_all` call, so an interrupted append can only ever
//! leave a partial *line*, never interleave with a concurrent record or
//! split a record from its terminator across two syscalls.

use std::io::{self, Write};

/// Appends `line` and its terminating newline as a single write, then
/// flushes so tailing consumers observe the record immediately.
///
/// `line` must not itself contain a newline — that would silently frame
/// two records; debug builds assert it.
///
/// # Errors
///
/// Propagates the underlying writer's errors.
pub fn append_line<W: Write + ?Sized>(w: &mut W, line: &str) -> io::Result<()> {
    debug_assert!(!line.contains('\n'), "a JSONL record must be a single line");
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    w.write_all(framed.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_one_line_per_record() {
        let mut buf: Vec<u8> = Vec::new();
        append_line(&mut buf, "{\"a\":1}").unwrap();
        append_line(&mut buf, "{\"b\":2}").unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn each_record_is_a_single_write() {
        // A writer that records the byte span of every `write` call:
        // the framing guarantee is record+newline in one syscall.
        struct Spans(Vec<usize>);
        impl Write for Spans {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.push(buf.len());
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = Spans(Vec::new());
        append_line(&mut w, "{\"cell\":3}").unwrap();
        assert_eq!(w.0, vec!["{\"cell\":3}\n".len()]);
    }

    #[test]
    fn round_trips_through_the_tail_rule() {
        let mut buf: Vec<u8> = Vec::new();
        append_line(&mut buf, "{\"x\":1}").unwrap();
        append_line(&mut buf, "{\"y\":2}").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (clean, partial) = crate::tail::split_partial_tail(&text);
        assert_eq!(clean, text, "every framed record is cleanly terminated");
        assert!(partial.is_empty());
    }
}
