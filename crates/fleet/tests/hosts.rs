//! Multi-host fleet tests: shards planned onto named hosts, machines
//! lost mid-campaign, caches pulled back over a (faked) wire — every
//! path pinned to the crown-jewel invariant that the fleet report is
//! **byte-identical** to a single-process sweep.

#![cfg(unix)]

use std::path::{Path, PathBuf};

use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_fleet::coordinator::{
    run_fleet_hosted, run_shard_worker, shard_cache_dir, FleetConfig, FleetError, WorkerConfig,
};
use griffin_fleet::events::{Event, EventSink};
use griffin_fleet::fault::FaultPlan;
use griffin_fleet::plan::{host_of, ShardPlan};
use griffin_fleet::transport::{ChaosExec, ExecTransport, LocalExec, SshExec, WorkerInvocation};
use griffin_sweep::cache::ResultCache;
use griffin_sweep::executor::run_campaign;
use griffin_sweep::report::{to_csv, to_json};
use griffin_sweep::spec::SweepSpec;

fn spec() -> SweepSpec {
    SweepSpec::new("fleet-hosts")
        .adhoc_layer("l0", 32, 256, 32, 1.0, 0.2)
        .adhoc_layer("l1", 16, 128, 64, 0.5, 0.5)
        .category(DnnCategory::B)
        .arch(ArchSpec::dense())
        .arch(ArchSpec::sparse_b_star())
        .arch(ArchSpec::griffin())
        .seeds([1, 2])
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "griffin-hosts-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Default)]
struct Recorder(Vec<Event>);

impl EventSink for Recorder {
    fn emit(&mut self, ev: &Event) -> std::io::Result<()> {
        self.0.push(ev.clone());
        Ok(())
    }
}

/// Records every shard's true event stream into `<dir>/stream-<s>` and
/// its results into the real shard cache dirs under `dir`.
fn record_streams(spec: &SweepSpec, dir: &Path, shards: usize) {
    let plan = ShardPlan::new(spec, shards).unwrap();
    std::fs::create_dir_all(dir).unwrap();
    for shard in 0..shards {
        let out = std::fs::File::create(dir.join(format!("stream-{shard}"))).unwrap();
        run_shard_worker(
            spec,
            &WorkerConfig {
                shards,
                shard,
                expect_fp: Some(plan.spec_fp),
                journal: None,
                cache_dir: shard_cache_dir(dir, shard),
                workers: 2,
                heartbeat_every: 0,
                fault: None,
                attempt: 0,
            },
            out,
        )
        .unwrap();
    }
}

/// A worker "launch" that replays shard `w.shard`'s recorded stream.
fn cat_invocation(dir: &Path) -> impl Fn(&griffin_fleet::WorkerSpawn) -> WorkerInvocation + Sync {
    let dir = dir.to_path_buf();
    move |w| {
        WorkerInvocation::new(
            "sh",
            vec![
                "-c".into(),
                format!("cat '{}/stream-{}'", dir.display(), w.shard),
            ],
        )
    }
}

/// The nonempty shard with the most cells, and the host it homes on.
fn victim_shard_and_host(spec: &SweepSpec, shards: usize, hosts: usize) -> (usize, usize) {
    let plan = ShardPlan::new(spec, shards).unwrap();
    let shard = (0..shards)
        .max_by_key(|&s| plan.cells[s].len())
        .expect("plan has shards");
    (shard, host_of(plan.spec_fp, shard, hosts))
}

fn two_local_hosts() -> Vec<Box<dyn ExecTransport>> {
    vec![
        Box::new(LocalExec::new("h0")) as Box<dyn ExecTransport>,
        Box::new(LocalExec::new("h1")),
    ]
}

#[test]
fn hosted_fleet_labels_events_and_matches_single_sweep() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let shards = 4;
    let plan = ShardPlan::new(&spec, shards).unwrap();
    let dir = scratch_dir("label");
    record_streams(&spec, &dir, shards);

    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.retry_backoff_ms = 0;
    let mut rec = Recorder::default();
    let fleet = run_fleet_hosted(
        &spec,
        &cfg,
        &two_local_hosts(),
        &cat_invocation(&dir),
        &mut rec,
    )
    .unwrap();
    assert_eq!(to_csv(&fleet), to_csv(&single), "hosted == clean sweep");
    assert_eq!(to_json(&fleet), to_json(&single));

    // Every shard lifecycle event is stamped with the shard's
    // fingerprint-stable home host.
    let mut labeled = 0;
    for ev in &rec.0 {
        let (shard, host) = match ev {
            Event::ShardStart { shard, host, .. } | Event::ShardDone { shard, host, .. } => {
                (*shard, host.clone())
            }
            _ => continue,
        };
        let home = format!("h{}", host_of(plan.spec_fp, shard, 2));
        assert_eq!(host.as_deref(), Some(home.as_str()), "shard {shard}");
        labeled += 1;
    }
    assert_eq!(labeled, 2 * shards, "every start/done pair is labeled");

    // A healthy campaign loses nothing and retires every host that
    // carried work — each exactly once.
    assert!(!rec.0.iter().any(|e| matches!(e, Event::HostLost { .. })));
    let retired: Vec<_> = rec
        .0
        .iter()
        .filter_map(|e| match e {
            Event::HostRetired { host } => Some(host.clone()),
            _ => None,
        })
        .collect();
    let mut homes: Vec<String> = (0..shards)
        .map(|s| format!("h{}", host_of(plan.spec_fp, s, 2)))
        .collect();
    homes.sort();
    homes.dedup();
    let mut sorted = retired.clone();
    sorted.sort();
    assert_eq!(sorted, homes, "each working host retires exactly once");
    assert!(matches!(rec.0.last(), Some(Event::CampaignDone { .. })));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partitioned_host_is_lost_and_shards_move_to_survivors() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let shards = 4;
    let (_, victim_host) = victim_shard_and_host(&spec, shards, 2);
    let victim = format!("h{victim_host}");
    let survivor = format!("h{}", 1 - victim_host);
    let dir = scratch_dir("partition");
    record_streams(&spec, &dir, shards);

    // The victim's network drops on every attempt: streams sever at the
    // first cell_done, so nothing launched there ever finishes.
    let plan = FaultPlan::parse(&format!("partition:host={victim}:after=0:attempt=any")).unwrap();
    let transports: Vec<Box<dyn ExecTransport>> = vec![
        Box::new(ChaosExec::new(LocalExec::new("h0"), plan.clone())),
        Box::new(ChaosExec::new(LocalExec::new("h1"), plan)),
    ];

    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.retry_backoff_ms = 0;
    cfg.max_shard_retries = 4;
    let mut rec = Recorder::default();
    let fleet =
        run_fleet_hosted(&spec, &cfg, &transports, &cat_invocation(&dir), &mut rec).unwrap();
    assert_eq!(
        to_csv(&fleet),
        to_csv(&single),
        "losing a machine mid-campaign must not change a byte"
    );

    // The loss is declared exactly once, and re-queued shards announce
    // their new host.
    let losses: Vec<_> = rec
        .0
        .iter()
        .filter_map(|e| match e {
            Event::HostLost { host, .. } => Some(host.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(losses, vec![victim.clone()], "one loss, the victim");
    assert!(
        rec.0.iter().any(|e| matches!(
            e,
            Event::ShardRetried { host: Some(h), .. } if *h == survivor
        )),
        "a re-queued shard moved to the survivor"
    );
    // Shards that finish after the loss all ran on the survivor.
    let lost_at = rec
        .0
        .iter()
        .position(|e| matches!(e, Event::HostLost { .. }))
        .unwrap();
    for ev in &rec.0[lost_at..] {
        if let Event::ShardDone { host, .. } = ev {
            assert_eq!(host.as_deref(), Some(survivor.as_str()));
        }
    }
    assert!(matches!(rec.0.last(), Some(Event::CampaignDone { .. })));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn refused_spawns_burn_attempts_then_recover_on_the_same_host() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let shards = 3;
    let (victim_shard, victim_host) = victim_shard_and_host(&spec, shards, 2);
    let victim = format!("h{victim_host}");
    let dir = scratch_dir("refuse");
    record_streams(&spec, &dir, shards);

    // The victim host refuses exactly one launch per shard, then
    // recovers — a flaky machine, not a dead one.
    let plan = FaultPlan::parse(&format!("refuse-spawn:host={victim}:attempts=1")).unwrap();
    let transports: Vec<Box<dyn ExecTransport>> = vec![
        Box::new(ChaosExec::new(LocalExec::new("h0"), plan.clone())),
        Box::new(ChaosExec::new(LocalExec::new("h1"), plan)),
    ];

    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.retry_backoff_ms = 0;
    // Keep the host alive: its failures must not cross the loss limit.
    cfg.host_failure_limit = 0;
    let mut rec = Recorder::default();
    let fleet =
        run_fleet_hosted(&spec, &cfg, &transports, &cat_invocation(&dir), &mut rec).unwrap();
    assert_eq!(to_csv(&fleet), to_csv(&single));
    let msg = rec
        .0
        .iter()
        .find_map(|e| match e {
            Event::ShardFailed { shard, msg, .. } if *shard == victim_shard => Some(msg.clone()),
            _ => None,
        })
        .expect("the refused launch is reported");
    assert!(
        msg.contains("refuses the spawn") && msg.contains(&victim),
        "{msg}"
    );
    assert!(!rec.0.iter().any(|e| matches!(e, Event::HostLost { .. })));
    assert!(matches!(rec.0.last(), Some(Event::CampaignDone { .. })));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_pull_backs_burn_an_attempt_and_heal_through_the_journal() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let shards = 3;
    let (victim_shard, victim_host) = victim_shard_and_host(&spec, shards, 2);
    let victim = format!("h{victim_host}");
    let dir = scratch_dir("pull");
    record_streams(&spec, &dir, shards);

    // Workers on the victim succeed, but their caches can never be
    // pulled back — indistinguishable from a machine that falls off the
    // network right after computing.
    let plan = FaultPlan::parse(&format!("fail-pull:host={victim}:attempt=any")).unwrap();
    let transports: Vec<Box<dyn ExecTransport>> = vec![
        Box::new(ChaosExec::new(LocalExec::new("h0"), plan.clone())),
        Box::new(ChaosExec::new(LocalExec::new("h1"), plan)),
    ];

    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.retry_backoff_ms = 0;
    cfg.max_shard_retries = 4;
    let mut rec = Recorder::default();
    let fleet =
        run_fleet_hosted(&spec, &cfg, &transports, &cat_invocation(&dir), &mut rec).unwrap();
    assert_eq!(to_csv(&fleet), to_csv(&single));
    let msg = rec
        .0
        .iter()
        .find_map(|e| match e {
            Event::ShardFailed { shard, msg, .. } if *shard == victim_shard => Some(msg.clone()),
            _ => None,
        })
        .expect("the failed pull is reported");
    assert!(msg.contains("cache pull failed twice"), "{msg}");
    assert!(msg.contains(&victim), "{msg}");
    // The failed attempt journaled every completion before the pull
    // died, so the retry finds nothing left to run: it completes from
    // the journal (skipping every cell) without paying another pull.
    assert!(
        rec.0.iter().any(|e| matches!(
            e,
            Event::ShardStart { shard, cells, skipped, .. }
                if *shard == victim_shard && cells == skipped && *cells > 0
        )),
        "the retry skipped every journaled cell"
    );
    assert!(matches!(rec.0.last(), Some(Event::CampaignDone { .. })));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_pull_backs_are_accepted_and_healed_by_merge_and_replay() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let shards = 3;
    let (_, victim_host) = victim_shard_and_host(&spec, shards, 2);
    let victim = format!("h{victim_host}");
    let dir = scratch_dir("torn-pull");
    record_streams(&spec, &dir, shards);

    // Every pull from the victim arrives torn mid-transfer. The
    // coordinator re-pulls once, accepts the copy, and lets the
    // merge/replay pipeline make up the difference.
    let plan = FaultPlan::parse(&format!("corrupt-pull:host={victim}:attempt=any")).unwrap();
    let transports: Vec<Box<dyn ExecTransport>> = vec![
        Box::new(ChaosExec::new(LocalExec::new("h0"), plan.clone())),
        Box::new(ChaosExec::new(LocalExec::new("h1"), plan)),
    ];

    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.retry_backoff_ms = 0;
    let mut rec = Recorder::default();
    let fleet =
        run_fleet_hosted(&spec, &cfg, &transports, &cat_invocation(&dir), &mut rec).unwrap();
    assert_eq!(
        to_csv(&fleet),
        to_csv(&single),
        "a torn pull never changes the report"
    );
    assert!(
        !rec.0.iter().any(|e| matches!(e, Event::ShardFailed { .. })),
        "torn pulls are absorbed, not failures"
    );
    let Some(Event::MergeDone { conflicts, .. }) =
        rec.0.iter().find(|e| matches!(e, Event::MergeDone { .. }))
    else {
        panic!("no merge_done");
    };
    assert_eq!(*conflicts, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn an_empty_transport_slice_is_exhausted_before_it_starts() {
    let spec = spec();
    let dir = scratch_dir("no-hosts");
    let mut rec = Recorder::default();
    match run_fleet_hosted(
        &spec,
        &FleetConfig::new(&dir, 2),
        &[],
        &cat_invocation(&dir),
        &mut rec,
    ) {
        Err(FleetError::HostsExhausted { hosts: 0 }) => {}
        other => panic!("expected HostsExhausted, got {other:?}"),
    }
    assert!(
        matches!(rec.0.last(), Some(Event::CampaignFailed { .. })),
        "failure is terminal on every exit path"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_host_partitioned_exhausts_the_shard_not_the_invariant() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let shards = 2;
    let dir = scratch_dir("all-down");
    record_streams(&spec, &dir, shards);

    // Both machines drop every stream. The last host standing is never
    // declared lost — the shard burns its retry budget there and the
    // campaign fails terminally instead of spinning.
    let plan = FaultPlan::parse(
        "partition:host=h0:after=0:attempt=any;partition:host=h1:after=0:attempt=any",
    )
    .unwrap();
    let transports: Vec<Box<dyn ExecTransport>> = vec![
        Box::new(ChaosExec::new(LocalExec::new("h0"), plan.clone())),
        Box::new(ChaosExec::new(LocalExec::new("h1"), plan)),
    ];
    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.retry_backoff_ms = 0;
    cfg.max_shard_retries = 2;
    let mut rec = Recorder::default();
    match run_fleet_hosted(&spec, &cfg, &transports, &cat_invocation(&dir), &mut rec) {
        Err(FleetError::ShardExhausted { .. }) => {}
        other => panic!("expected exhausted retries, got {other:?}"),
    }
    assert!(matches!(rec.0.last(), Some(Event::CampaignFailed { .. })));

    // The journal is not poisoned: resuming on a healthy fleet
    // completes byte-identically.
    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.retry_backoff_ms = 0;
    cfg.resume = true;
    let mut rec = Recorder::default();
    let fleet = run_fleet_hosted(
        &spec,
        &cfg,
        &two_local_hosts(),
        &cat_invocation(&dir),
        &mut rec,
    )
    .unwrap();
    assert_eq!(to_csv(&fleet), to_csv(&single), "resume after the outage");
    assert!(matches!(rec.0.last(), Some(Event::CampaignDone { .. })));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// End-to-end over `SshExec` with fake `ssh`/`scp` programs: the
/// "remote" machine is a sibling directory, the fakes rewrite the
/// mirrored paths, and the shard caches genuinely move — the pull-back
/// and its verification run for real.
#[test]
fn ssh_transport_ships_runs_and_pulls_through_fake_programs() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let shards = 2;
    let dir = scratch_dir("ssh");
    let remote = scratch_dir("ssh-remote");
    // The "remote" filesystem: recorded streams and the caches the
    // workers will have produced live only there.
    record_streams(&spec, &remote, shards);
    std::fs::create_dir_all(&dir).unwrap();

    // fake ssh: `ssh <host> <command>` — rewrite local paths to the
    // remote root and run the command here.
    let write_tool = |name: &str, body: String| -> PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        let mut perm = std::fs::metadata(&path).unwrap().permissions();
        use std::os::unix::fs::PermissionsExt;
        perm.set_mode(0o755);
        std::fs::set_permissions(&path, perm).unwrap();
        path
    };
    let ssh = write_tool(
        "fake-ssh",
        format!(
            "#!/bin/sh\nshift\ncmd=$(printf '%s' \"$1\" | sed \"s|{local}|{remote}|g\")\n\
             eval \"$cmd\"\n",
            local = dir.display(),
            remote = remote.display()
        ),
    );
    // fake scp: strip flags and `host:` prefixes, rewrite the remote
    // side's path to the remote root, then copy.
    let scp = write_tool(
        "fake-scp",
        format!(
            "#!/bin/sh\nargs=\"\"\nfor a in \"$@\"; do\n  case \"$a\" in\n    -*) ;;\n    \
             *:*) args=\"$args $(printf '%s' \"${{a#*:}}\" | sed \"s|{local}|{remote}|g\")\" ;;\n    \
             *) args=\"$args $a\" ;;\n  esac\ndone\ncp -r $args\n",
            local = dir.display(),
            remote = remote.display()
        ),
    );

    // Ship a file by content before the first launch.
    let shipped_src = dir.join("scenario.toml");
    std::fs::write(&shipped_src, "campaign = \"fleet-hosts\"\n").unwrap();
    let make_ssh = |host: &str| {
        SshExec::new(host)
            .with_programs(ssh.display().to_string(), scp.display().to_string())
            .with_shipped_file(&shipped_src)
    };
    let transports: Vec<Box<dyn ExecTransport>> =
        vec![Box::new(make_ssh("h0")), Box::new(make_ssh("h1"))];

    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.retry_backoff_ms = 0;
    let mut rec = Recorder::default();
    let fleet =
        run_fleet_hosted(&spec, &cfg, &transports, &cat_invocation(&dir), &mut rec).unwrap();
    assert_eq!(to_csv(&fleet), to_csv(&single), "ssh fleet == clean sweep");

    // The shard caches were genuinely pulled back into the local fleet
    // dir, and the shipped file landed on the "remote" machine.
    for shard in 0..shards {
        assert!(
            shard_cache_dir(&dir, shard).is_dir(),
            "shard {shard} cache pulled back"
        );
    }
    assert_eq!(
        std::fs::read_to_string(remote.join("scenario.toml")).unwrap(),
        "campaign = \"fleet-hosts\"\n",
        "shipped by content to the mirrored remote path"
    );
    assert!(matches!(rec.0.last(), Some(Event::CampaignDone { .. })));
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&remote).unwrap();
}
