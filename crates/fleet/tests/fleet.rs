//! Integration tests of the fleet coordinator: byte-identity with a
//! single-process sweep, journaled resume, lossless cache merging, and
//! the in-process shard-worker protocol.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Mutex;

use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_fleet::coordinator::{
    journal_path, merged_cache_dir, run_fleet, run_shard_worker, shard_cache_dir, FleetConfig,
    FleetError, WorkerConfig,
};
use griffin_fleet::events::{Event, EventSink, NullSink};
use griffin_fleet::plan::ShardPlan;
use griffin_sim::config::{Fidelity, SimConfig};
use griffin_sweep::cache::ResultCache;
use griffin_sweep::executor::run_campaign;
use griffin_sweep::report::{to_csv, to_json};
use griffin_sweep::spec::SweepSpec;

fn spec() -> SweepSpec {
    SweepSpec::new("fleet-it")
        .adhoc_layer("l0", 32, 256, 32, 1.0, 0.2)
        .adhoc_layer("l1", 16, 128, 64, 0.5, 0.5)
        .category(DnnCategory::B)
        .arch(ArchSpec::dense())
        .arch(ArchSpec::sparse_b_star())
        .arch(ArchSpec::griffin())
        .seeds([1, 2])
        .sim(SimConfig {
            fidelity: Fidelity::Sampled { tiles: 4, seed: 1 },
            ..SimConfig::default()
        })
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "griffin-fleet-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Collects the event stream in memory for assertions.
#[derive(Default)]
struct Recorder(Vec<Event>);

impl EventSink for Recorder {
    fn emit(&mut self, ev: &Event) -> std::io::Result<()> {
        self.0.push(ev.clone());
        Ok(())
    }
}

#[test]
fn fleet_reports_are_byte_identical_to_a_single_sweep() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    for shards in [1, 3, 4] {
        let dir = scratch_dir(&format!("ident-{shards}"));
        let fleet = run_fleet(&spec, &FleetConfig::new(&dir, shards), &mut NullSink).unwrap();
        assert_eq!(
            to_csv(&fleet),
            to_csv(&single),
            "{shards}-shard CSV must match"
        );
        assert_eq!(
            to_json(&fleet),
            to_json(&single),
            "{shards}-shard JSON must match"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn event_stream_covers_every_cell_and_shard() {
    let spec = spec();
    let dir = scratch_dir("events");
    let mut rec = Recorder::default();
    let mut cfg = FleetConfig::new(&dir, 3);
    cfg.heartbeat_every = 2;
    run_fleet(&spec, &cfg, &mut rec).unwrap();
    let events = rec.0;

    let Some(Event::CampaignStart {
        cells,
        shards,
        resumed,
        ..
    }) = events.first()
    else {
        panic!("stream must open with campaign_start");
    };
    assert_eq!((*cells, *shards, *resumed), (12, 3, 0));
    assert!(matches!(
        events.last(),
        Some(Event::CampaignDone { cells: 12, .. })
    ));

    let mut done_cells = BTreeSet::new();
    let mut shard_starts = 0;
    let mut shard_dones = 0;
    let mut heartbeats = 0;
    for ev in &events {
        match ev {
            Event::CellDone { cell, cached, .. } => {
                assert!(!cached, "cold run simulates everything");
                assert!(done_cells.insert(*cell), "cell {cell} done twice");
            }
            Event::ShardStart { .. } => shard_starts += 1,
            Event::ShardDone { .. } => shard_dones += 1,
            Event::Heartbeat { .. } => heartbeats += 1,
            _ => {}
        }
    }
    assert_eq!(done_cells.len(), 12, "every cell streams exactly once");
    assert_eq!((shard_starts, shard_dones), (3, 3));
    assert!(
        heartbeats > 0,
        "heartbeat cadence 2 over 12 cells must fire"
    );
    assert!(matches!(
        events.iter().rev().nth(1),
        Some(Event::MergeDone { conflicts: 0, .. })
    ));

    // The on-disk journal now knows every cell.
    assert_eq!(
        griffin_fleet::Journal::peek_completed(
            journal_path(&dir),
            &griffin_fleet::JournalHeader {
                campaign: spec.name.clone(),
                spec_fp: ShardPlan::new(&spec, 3).unwrap().spec_fp,
                cells: 12,
                scenario: None,
            },
        )
        .unwrap()
        .len(),
        12
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_skips_journaled_cells_and_recomputes_lost_ones() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let dir = scratch_dir("resume");
    let cfg = FleetConfig::new(&dir, 2);
    run_fleet(&spec, &cfg, &mut NullSink).unwrap();

    // Forge an interruption: drop the journal's last entry AND that
    // cell's cached result, so resume must actually re-simulate it.
    let jpath = journal_path(&dir);
    let text = std::fs::read_to_string(&jpath).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    let last = lines.pop().unwrap();
    let lost_fp = last.split("\"fp\":\"").nth(1).unwrap()[..32].to_string();
    std::fs::write(&jpath, format!("{}\n", lines.join("\n"))).unwrap();
    let mut removed = 0;
    for shard in 0..2 {
        let p = shard_cache_dir(&dir, shard).join(format!("{lost_fp}.json"));
        if p.exists() {
            std::fs::remove_file(&p).unwrap();
            removed += 1;
        }
    }
    let merged_entry = merged_cache_dir(&dir).join(format!("{lost_fp}.json"));
    std::fs::remove_file(&merged_entry).unwrap();
    assert_eq!(removed, 1, "the lost cell lived in exactly one shard");

    let mut rec = Recorder::default();
    let mut cfg = cfg;
    cfg.resume = true;
    let fleet = run_fleet(&spec, &cfg, &mut rec).unwrap();
    assert_eq!(
        to_csv(&fleet),
        to_csv(&single),
        "resumed CSV byte-identical"
    );

    let Some(Event::CampaignStart { resumed, .. }) = rec.0.first() else {
        panic!("no campaign_start");
    };
    assert_eq!(*resumed, 11, "all but the forged-lost cell resumed");
    let simulated: usize = rec
        .0
        .iter()
        .filter_map(|e| match e {
            Event::ShardDone { simulated, .. } => Some(*simulated),
            _ => None,
        })
        .sum();
    assert_eq!(simulated, 1, "exactly the lost cell was re-simulated");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_with_a_different_shard_count_still_matches() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let dir = scratch_dir("reshard");
    run_fleet(&spec, &FleetConfig::new(&dir, 4), &mut NullSink).unwrap();

    // Resharding is allowed: the journal identity is the grid, not the
    // partition, and old shard-* caches still merge.
    let mut cfg = FleetConfig::new(&dir, 2);
    cfg.resume = true;
    let mut rec = Recorder::default();
    let fleet = run_fleet(&spec, &cfg, &mut rec).unwrap();
    assert_eq!(to_csv(&fleet), to_csv(&single));
    let simulated: usize = rec
        .0
        .iter()
        .filter_map(|e| match e {
            Event::ShardDone { simulated, .. } => Some(*simulated),
            _ => None,
        })
        .sum();
    assert_eq!(simulated, 0, "nothing recomputed across the reshard");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resuming_a_different_grid_is_rejected() {
    let spec = spec();
    let dir = scratch_dir("reject");
    run_fleet(&spec, &FleetConfig::new(&dir, 2), &mut NullSink).unwrap();

    let other = spec.clone().seeds([1, 3]); // different grid
    let mut cfg = FleetConfig::new(&dir, 2);
    cfg.resume = true;
    match run_fleet(&other, &cfg, &mut NullSink) {
        Err(FleetError::Journal(griffin_fleet::JournalError::Mismatch { .. })) => {}
        other => panic!("expected journal mismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_workers_cover_the_plan_and_reject_wrong_fingerprints() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let dir = scratch_dir("worker");
    let shards = 3;
    let plan = ShardPlan::new(&spec, shards).unwrap();

    // Drive each shard through the worker entry point (what the
    // subprocess runs), collecting its JSONL stream.
    for shard in 0..shards {
        let out = Mutex::new(Vec::<u8>::new());
        struct W<'a>(&'a Mutex<Vec<u8>>);
        impl std::io::Write for W<'_> {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        run_shard_worker(
            &spec,
            &WorkerConfig {
                shards,
                shard,
                expect_fp: Some(plan.spec_fp),
                journal: None,
                cache_dir: shard_cache_dir(&dir, shard),
                workers: 2,
                heartbeat_every: 0,
                fault: None,
                attempt: 0,
            },
            W(&out),
        )
        .unwrap();
        let text = String::from_utf8(out.into_inner().unwrap()).unwrap();
        let events: Vec<Event> = text
            .lines()
            .map(|l| Event::parse_line(l).unwrap())
            .collect();
        assert!(matches!(events.first(), Some(Event::ShardStart { .. })));
        assert!(matches!(events.last(), Some(Event::ShardDone { .. })));
        let done = events
            .iter()
            .filter(|e| matches!(e, Event::CellDone { .. }))
            .count();
        assert_eq!(done, plan.cells[shard].len());
    }

    // A wrong fingerprint is refused before any work happens.
    match run_shard_worker(
        &spec,
        &WorkerConfig {
            shards,
            shard: 0,
            expect_fp: Some(griffin_sweep::fingerprint::Fingerprint(1, 2)),
            journal: None,
            cache_dir: shard_cache_dir(&dir, 9),
            workers: 1,
            heartbeat_every: 0,
            fault: None,
            attempt: 0,
        },
        Vec::new(),
    ) {
        Err(FleetError::SpecFingerprint { .. }) => {}
        other => panic!("expected fingerprint mismatch, got {other:?}"),
    }
    assert!(
        !shard_cache_dir(&dir, 9).exists(),
        "rejected worker must not touch its cache dir"
    );

    // The per-shard caches the workers wrote merge into the single-run
    // report without a coordinator having orchestrated them.
    let fleet = run_fleet(&spec, &FleetConfig::new(&dir, shards), &mut NullSink).unwrap();
    assert_eq!(to_csv(&fleet), to_csv(&single));
    std::fs::remove_dir_all(&dir).unwrap();
}
