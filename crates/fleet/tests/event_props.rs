//! Property tests of the full fleet event schema: every variant (v1 and
//! v2), serialized and parsed back, over randomized field values —
//! including degenerate floats, strings that need escaping, unknown
//! fields (which must be tolerated) and v1 lines (which must still
//! parse).

use griffin_fleet::events::Event;
use griffin_sweep::cache::CellMetrics;
use griffin_sweep::fingerprint::Fingerprint;
use griffin_sweep::json::Json;
use proptest::prelude::*;

/// Deterministic metrics from two draws; `special` selects a
/// non-finite float injection (JSON numbers cannot express them, so
/// they stress the lossless float encoding).
fn metrics_from(a: u64, b: u64, special: u64) -> CellMetrics {
    let f = |x: u64| (x % 1_000_000) as f64 / 7.0;
    let mut m = CellMetrics {
        speedup: f(a ^ 1),
        cycles: f(a ^ 2),
        dense_cycles: a,
        power_mw: f(b ^ 3),
        area_mm2: f(b ^ 4),
        tops_per_w: f(a ^ b),
        tops_per_mm2: f(b ^ 5),
    };
    match special % 4 {
        1 => m.tops_per_w = f64::NAN,
        2 => m.tops_per_mm2 = f64::INFINITY,
        3 => m.power_mw = f64::NEG_INFINITY,
        _ => {}
    }
    m
}

/// One event of each schema variant, fields derived from the draws.
/// Strings mix in characters that need JSON escaping.
fn build_event(variant: usize, a: u64, b: u64, flag: bool, special: u64) -> Event {
    let s = |tag: &str| format!("{tag}-\"{a}\"\n\\{b}");
    let n = |x: u64| (x % 100_000) as usize;
    match variant {
        0 => Event::CampaignStart {
            campaign: s("camp"),
            spec_fp: Fingerprint(a, b),
            cells: n(a),
            shards: n(b) + 1,
            resumed: n(a ^ b),
            // The optional provenance pair exercises both shapes.
            scenario: flag.then(|| griffin_sweep::scenario::ScenarioProvenance {
                file: s("scenario"),
                fp: Fingerprint(b ^ 7, a ^ 9),
            }),
        },
        1 => Event::ShardStart {
            shard: n(a),
            cells: n(b),
            skipped: n(a ^ 1),
        },
        2 => Event::CellStart {
            shard: n(a),
            cell: n(b),
            fp: Fingerprint(b, a),
        },
        3 => Event::CellDone {
            shard: n(a),
            cell: n(b),
            fp: Fingerprint(a, a),
            cached: flag,
            metrics: metrics_from(a, b, special),
        },
        4 => Event::Heartbeat {
            shard: n(a),
            done: n(b),
            total: n(b) + n(a),
        },
        5 => Event::ShardDone {
            shard: n(a),
            simulated: n(b),
            cached: n(a ^ 2),
            elapsed_ms: b % 1_000_000_000,
        },
        6 => Event::ShardFailed {
            shard: n(a),
            attempt: n(b) % 16,
            msg: s("worker exited"),
        },
        7 => Event::CellsRequeued {
            shard: n(a),
            cells: n(b),
        },
        8 => Event::ShardRetried {
            shard: n(a),
            attempt: n(b) % 16 + 1,
        },
        9 => Event::MergeDone {
            sources: n(a),
            merged: b % 1_000_000,
            identical: a % 1_000_000,
            healed: (a ^ b) % 100,
            conflicts: u64::from(flag),
        },
        10 => Event::CampaignDone {
            cells: n(a),
            elapsed_ms: b % 1_000_000_000,
        },
        _ => Event::CampaignFailed { msg: s("gave up") },
    }
}

/// Serializes `ev` with extra unknown fields injected into the object.
fn with_unknown_fields(ev: &Event) -> String {
    let Json::Obj(mut m) = ev.to_json() else {
        panic!("events serialize to objects");
    };
    m.insert("aaa_unknown".into(), Json::Num(42.0));
    m.insert(
        "zz_future".into(),
        Json::obj([("nested".into(), Json::Bool(true))]),
    );
    Json::Obj(m).write()
}

/// Serializes `ev` as a v1 consumer would have written it: no `format`
/// tag, no v2-only optional fields.
fn as_v1_line(ev: &Event) -> String {
    let Json::Obj(mut m) = ev.to_json() else {
        panic!("events serialize to objects");
    };
    m.remove("format");
    m.remove("healed");
    Json::Obj(m).write()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// serialize → parse is the identity on every variant, for any
    /// field values (NaN metrics compared through their canonical
    /// line, since NaN breaks `PartialEq`).
    #[test]
    fn every_event_roundtrips_for_arbitrary_fields(
        variant in 0usize..12,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
        special in 0u64..4,
    ) {
        let ev = build_event(variant, a, b, flag, special);
        let line = ev.to_line();
        prop_assert!(!line.contains('\n'), "one event, one line: {line}");
        let back = Event::parse_line(&line).expect(&line);
        prop_assert_eq!(back.to_line(), line.clone(), "canonical form is a fixpoint");
        if special % 4 == 0 {
            prop_assert_eq!(back, ev, "{}", line);
        }
    }

    /// Unknown fields inside known events are ignored, and v1 lines
    /// (no `format` tag, no `healed`) still parse to the same event.
    #[test]
    fn unknown_fields_and_v1_lines_are_tolerated(
        variant in 0usize..12,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
    ) {
        let ev = build_event(variant, a, b, flag, 0);
        let noisy = Event::parse_line(&with_unknown_fields(&ev)).expect("unknown fields ignored");
        prop_assert_eq!(&noisy, &ev);
        // v1 compatibility only differs for campaign_start/merge_done,
        // but stripping nothing from the rest must be harmless too.
        let from_v1 = Event::parse_line(&as_v1_line(&ev)).expect("v1 line parses");
        match from_v1 {
            Event::MergeDone { healed, .. } if variant == 9 => {
                prop_assert_eq!(healed, 0, "v1 merge_done has no healed count")
            }
            other => prop_assert_eq!(other, ev),
        }
    }
}
