//! Property tests of the full fleet event schema: every variant (v1,
//! v2 and v3), serialized and parsed back, over randomized field
//! values — including degenerate floats, strings that need escaping,
//! unknown fields (which must be tolerated) and legacy lines (which
//! must still parse).

use griffin_fleet::events::sample::build_event;
use griffin_fleet::events::Event;
use griffin_sweep::json::Json;
use proptest::prelude::*;

/// Serializes `ev` with extra unknown fields injected into the object.
fn with_unknown_fields(ev: &Event) -> String {
    let Json::Obj(mut m) = ev.to_json() else {
        panic!("events serialize to objects");
    };
    m.insert("aaa_unknown".into(), Json::Num(42.0));
    m.insert(
        "zz_future".into(),
        Json::obj([("nested".into(), Json::Bool(true))]),
    );
    Json::Obj(m).write()
}

/// Serializes `ev` as a v1 consumer would have written it: no `format`
/// tag, no v2/v3-only optional fields. The enrichment fields are only
/// stripped where they are later additions — `elapsed_ms`/`cached` are
/// original v1 fields on `shard_done`, but additions on `heartbeat`.
fn as_v1_line(ev: &Event) -> String {
    let Json::Obj(mut m) = ev.to_json() else {
        panic!("events serialize to objects");
    };
    m.remove("format");
    m.remove("healed");
    // `host` is required on host_lost/host_retired (which have no
    // legacy form at all) — only the shard events carry it optionally.
    if matches!(
        ev,
        Event::ShardStart { .. }
            | Event::ShardDone { .. }
            | Event::ShardFailed { .. }
            | Event::ShardRetried { .. }
    ) {
        m.remove("host");
        m.remove("backoff_ms");
    }
    if matches!(ev, Event::Heartbeat { .. }) {
        m.remove("elapsed_ms");
        m.remove("cached");
    }
    Json::Obj(m).write()
}

/// What a legacy (pre-v3) line parses back to: the same event with the
/// v3 additions at their defaults.
fn strip_v3(ev: Event) -> Event {
    match ev {
        Event::ShardStart {
            shard,
            cells,
            skipped,
            ..
        } => Event::ShardStart {
            shard,
            cells,
            skipped,
            host: None,
        },
        Event::ShardDone {
            shard,
            simulated,
            cached,
            elapsed_ms,
            ..
        } => Event::ShardDone {
            shard,
            simulated,
            cached,
            elapsed_ms,
            host: None,
        },
        Event::ShardFailed {
            shard,
            attempt,
            msg,
            ..
        } => Event::ShardFailed {
            shard,
            attempt,
            msg,
            host: None,
        },
        Event::ShardRetried { shard, attempt, .. } => Event::ShardRetried {
            shard,
            attempt,
            backoff_ms: 0,
            host: None,
        },
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// serialize → parse is the identity on every variant, for any
    /// field values (NaN metrics compared through their canonical
    /// line, since NaN breaks `PartialEq`).
    #[test]
    fn every_event_roundtrips_for_arbitrary_fields(
        variant in 0usize..14,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
        special in 0u64..4,
    ) {
        let ev = build_event(variant, a, b, flag, special);
        let line = ev.to_line();
        prop_assert!(!line.contains('\n'), "one event, one line: {line}");
        let back = Event::parse_line(&line).expect(&line);
        prop_assert_eq!(back.to_line(), line.clone(), "canonical form is a fixpoint");
        if special % 4 == 0 {
            prop_assert_eq!(back, ev, "{}", line);
        }
    }

    /// Unknown fields inside known events are ignored, and v1 lines
    /// (no `format` tag, no `healed`) still parse to the same event.
    #[test]
    fn unknown_fields_and_v1_lines_are_tolerated(
        variant in 0usize..14,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
    ) {
        let ev = build_event(variant, a, b, flag, 0);
        let noisy = Event::parse_line(&with_unknown_fields(&ev)).expect("unknown fields ignored");
        prop_assert_eq!(&noisy, &ev);
        // v1 compatibility only differs for campaign_start/merge_done,
        // but stripping nothing from the rest must be harmless too.
        let from_v1 = Event::parse_line(&as_v1_line(&ev)).expect("v1 line parses");
        match from_v1 {
            Event::MergeDone { healed, .. } if variant == 9 => {
                prop_assert_eq!(healed, 0, "v1 merge_done has no healed count")
            }
            Event::Heartbeat { elapsed_ms, cached, shard, done, total } if variant == 4 => {
                prop_assert_eq!((elapsed_ms, cached), (0, 0), "v1 heartbeat is unenriched");
                let Event::Heartbeat { shard: s, done: d, total: t, .. } = ev else {
                    unreachable!()
                };
                prop_assert_eq!((shard, done, total), (s, d, t));
            }
            other => prop_assert_eq!(other, strip_v3(ev)),
        }
    }
}
