//! Chaos tests of the fleet's fault tolerance: every recovery path is
//! driven by a deterministic [`FaultPlan`] and pinned to the same
//! invariant — the final report is **byte-identical** to an unfaulted
//! single-process sweep, or the campaign fails cleanly with a terminal
//! `campaign_failed` event.

use std::path::PathBuf;

use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_fleet::coordinator::{
    journal_path, retry_backoff_ms, run_fleet, shard_cache_dir, verify_shard_sources, FleetConfig,
    FleetError,
};
use griffin_fleet::events::{Event, EventSink};
use griffin_fleet::fault::{Fault, FaultPlan};
use griffin_fleet::plan::ShardPlan;
use griffin_sim::config::{Fidelity, SimConfig};
use griffin_sweep::cache::ResultCache;
use griffin_sweep::executor::run_campaign;
use griffin_sweep::report::{to_csv, to_json};
use griffin_sweep::spec::SweepSpec;

fn spec() -> SweepSpec {
    SweepSpec::new("fleet-chaos")
        .adhoc_layer("l0", 32, 256, 32, 1.0, 0.2)
        .adhoc_layer("l1", 16, 128, 64, 0.5, 0.5)
        .category(DnnCategory::B)
        .arch(ArchSpec::dense())
        .arch(ArchSpec::sparse_b_star())
        .arch(ArchSpec::griffin())
        .seeds([1, 2])
        .sim(SimConfig {
            fidelity: Fidelity::Sampled { tiles: 4, seed: 1 },
            ..SimConfig::default()
        })
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "griffin-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Collects the event stream in memory for assertions.
#[derive(Default)]
struct Recorder(Vec<Event>);

impl EventSink for Recorder {
    fn emit(&mut self, ev: &Event) -> std::io::Result<()> {
        self.0.push(ev.clone());
        Ok(())
    }
}

/// A shard guaranteed to have planned cells (fault targets must bite).
fn nonempty_shard(plan: &ShardPlan) -> usize {
    (0..plan.shards)
        .max_by_key(|&s| plan.cells[s].len())
        .expect("plan has shards")
}

#[test]
fn in_process_kill_is_retried_and_stays_byte_identical() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let shards = 3;
    let plan = ShardPlan::new(&spec, shards).unwrap();
    let victim = nonempty_shard(&plan);
    let dir = scratch_dir("kill");

    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.retry_backoff_ms = 0;
    cfg.fault = Some(FaultPlan::parse(&format!("kill:shard={victim}:after=1")).unwrap());
    let mut rec = Recorder::default();
    let fleet = run_fleet(&spec, &cfg, &mut rec).unwrap();
    assert_eq!(to_csv(&fleet), to_csv(&single), "killed + retried == clean");
    assert_eq!(to_json(&fleet), to_json(&single));

    // Failure lifecycle: one failure, the completed cell stays
    // journaled, the rest re-queues, the retry announces attempt 1.
    let failed: Vec<_> = rec
        .0
        .iter()
        .filter(|e| matches!(e, Event::ShardFailed { .. }))
        .collect();
    assert_eq!(failed.len(), 1);
    let Event::ShardFailed {
        shard,
        attempt,
        msg,
        ..
    } = failed[0]
    else {
        unreachable!()
    };
    assert_eq!((*shard, *attempt), (victim, 0));
    assert!(msg.contains("fault injected"), "{msg}");
    assert!(rec.0.contains(&Event::CellsRequeued {
        shard: victim,
        cells: plan.cells[victim].len() - 1,
    }));
    assert!(rec.0.contains(&Event::ShardRetried {
        shard: victim,
        attempt: 1,
        backoff_ms: 0,
        host: None,
    }));
    // The victim shard started twice; the retry skipped the journaled
    // cell.
    let victim_starts: Vec<usize> = rec
        .0
        .iter()
        .filter_map(|e| match e {
            Event::ShardStart { shard, skipped, .. } if *shard == victim => Some(*skipped),
            _ => None,
        })
        .collect();
    assert_eq!(victim_starts, vec![0, 1]);
    assert!(matches!(rec.0.last(), Some(Event::CampaignDone { .. })));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn exhausted_retries_fail_cleanly_and_resume_recovers() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let shards = 2;
    let plan = ShardPlan::new(&spec, shards).unwrap();
    let victim = nonempty_shard(&plan);
    let dir = scratch_dir("exhaust");

    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.max_shard_retries = 1;
    cfg.retry_backoff_ms = 0;
    cfg.fault =
        Some(FaultPlan::parse(&format!("kill:shard={victim}:after=0:attempt=any")).unwrap());
    let mut rec = Recorder::default();
    match run_fleet(&spec, &cfg, &mut rec) {
        Err(FleetError::ShardExhausted {
            shard, attempts, ..
        }) => {
            assert_eq!((shard, attempts), (victim, 2), "initial try + 1 retry");
        }
        other => panic!("expected exhausted retries, got {other:?}"),
    }
    let failures = rec
        .0
        .iter()
        .filter(|e| matches!(e, Event::ShardFailed { .. }))
        .count();
    assert_eq!(failures, 2, "every attempt's death is reported");
    assert!(
        matches!(rec.0.last(), Some(Event::CampaignFailed { .. })),
        "failure is terminal on every exit path: {:?}",
        rec.0.last()
    );

    // The state dir is not poisoned: dropping the fault and resuming
    // completes the campaign byte-identically.
    cfg.fault = None;
    cfg.resume = true;
    let mut rec = Recorder::default();
    let fleet = run_fleet(&spec, &cfg, &mut rec).unwrap();
    assert_eq!(to_csv(&fleet), to_csv(&single));
    assert!(matches!(rec.0.last(), Some(Event::CampaignDone { .. })));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn retry_backoff_schedule_is_exact_and_bounded() {
    let spec = spec();
    let shards = 2;
    let plan = ShardPlan::new(&spec, shards).unwrap();
    let victim = nonempty_shard(&plan);
    let dir = scratch_dir("backoff");

    // A shard that dies on every attempt walks the whole backoff
    // schedule before exhausting its budget.
    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.max_shard_retries = 3;
    cfg.retry_backoff_ms = 8;
    cfg.fault =
        Some(FaultPlan::parse(&format!("kill:shard={victim}:after=0:attempt=any")).unwrap());
    let mut rec = Recorder::default();
    assert!(matches!(
        run_fleet(&spec, &cfg, &mut rec),
        Err(FleetError::ShardExhausted { .. })
    ));

    let schedule: Vec<(usize, u64)> = rec
        .0
        .iter()
        .filter_map(|e| match e {
            Event::ShardRetried {
                shard,
                attempt,
                backoff_ms,
                ..
            } if *shard == victim => Some((*attempt, *backoff_ms)),
            _ => None,
        })
        .collect();
    let expect: Vec<(usize, u64)> = (1..=3)
        .map(|a| (a, retry_backoff_ms(victim, a, 8)))
        .collect();
    assert_eq!(
        schedule, expect,
        "every retry announces the exact planned backoff"
    );
    // Bounded exponential with deterministic jitter: attempt N waits
    // base << (N-1) plus a jitter strictly under max(base/4, 1).
    for (a, ms) in &expect {
        let exp = 8u64 << (a - 1).min(6);
        assert!(*ms >= exp && *ms < exp + 2, "attempt {a} waited {ms}ms");
    }
    // The exponent is capped: attempt 70 waits no longer than attempt 7.
    assert!(retry_backoff_ms(victim, 70, 8) <= retry_backoff_ms(victim, 7, 8) + 2);
    // Zero base (the fast-test escape hatch) and attempt 0 never wait.
    assert_eq!(retry_backoff_ms(victim, 1, 0), 0);
    assert_eq!(retry_backoff_ms(victim, 0, 8), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_shard_cache_heals_through_merge_and_replay() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let shards = 3;
    let plan = ShardPlan::new(&spec, shards).unwrap();
    let victim = nonempty_shard(&plan);
    let dir = scratch_dir("corrupt");

    // Standalone cache corruption: the shard "completes", but its cache
    // looks like a process died mid-write (torn entry + stray tmp).
    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.fault = Some(FaultPlan::parse(&format!("corrupt-cache:shard={victim}")).unwrap());
    let mut rec = Recorder::default();
    let fleet = run_fleet(&spec, &cfg, &mut rec).unwrap();
    assert_eq!(
        to_csv(&fleet),
        to_csv(&single),
        "replay re-simulates whatever the torn entry held"
    );
    assert!(
        shard_cache_dir(&dir, victim).join("fault.tmp.0.0").exists(),
        "the stray tmp was left for merge to skip"
    );
    let Some(Event::MergeDone { conflicts, .. }) =
        rec.0.iter().find(|e| matches!(e, Event::MergeDone { .. }))
    else {
        panic!("no merge_done");
    };
    assert_eq!(*conflicts, 0, "torn entries are skipped, not conflicts");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_journal_aborts_terminally_and_resume_recovers() {
    let spec = spec();
    let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
    let dir = scratch_dir("torn-journal");

    let mut cfg = FleetConfig::new(&dir, 2);
    cfg.fault = Some(FaultPlan::parse("truncate-journal:after=3").unwrap());
    let mut rec = Recorder::default();
    match run_fleet(&spec, &cfg, &mut rec) {
        Err(FleetError::Injected(Fault::TruncateJournal { after: 3 })) => {}
        other => panic!("expected the injected journal fault, got {other:?}"),
    }
    assert!(matches!(rec.0.last(), Some(Event::CampaignFailed { .. })));
    let text = std::fs::read_to_string(journal_path(&dir)).unwrap();
    assert!(
        !text.ends_with('\n'),
        "the journal tail is torn mid-append: {text:?}"
    );
    assert_eq!(text.lines().count(), 5, "header + 3 entries + torn tail");

    cfg.fault = None;
    cfg.resume = true;
    let mut rec = Recorder::default();
    let fleet = run_fleet(&spec, &cfg, &mut rec).unwrap();
    assert_eq!(to_csv(&fleet), to_csv(&single), "resume after torn tail");
    let Some(Event::CampaignStart { resumed, .. }) = rec.0.first() else {
        panic!("no campaign_start");
    };
    assert_eq!(*resumed, 3, "exactly the cleanly-journaled cells resumed");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Spawn-mode chaos without the CLI binary: worker stdout streams are
/// pre-recorded by running the real shard-worker entry point
/// in-process (filling the real shard caches), then replayed through
/// `sh`/`cat` — so a "worker" can die or hang on one attempt and
/// produce the true stream on the next.
#[cfg(unix)]
mod spawned {
    use super::*;
    use griffin_fleet::coordinator::{run_fleet_spawned, run_shard_worker, WorkerConfig};
    use griffin_fleet::events::NullSink;
    use std::process::Command;

    /// Records every shard's true event stream into `<dir>/stream-<s>`
    /// (and its results into the real shard cache dirs).
    fn record_streams(spec: &SweepSpec, dir: &std::path::Path, shards: usize) {
        let plan = ShardPlan::new(spec, shards).unwrap();
        std::fs::create_dir_all(dir).unwrap();
        for shard in 0..shards {
            let out = std::fs::File::create(dir.join(format!("stream-{shard}"))).unwrap();
            run_shard_worker(
                spec,
                &WorkerConfig {
                    shards,
                    shard,
                    expect_fp: Some(plan.spec_fp),
                    journal: None,
                    cache_dir: shard_cache_dir(dir, shard),
                    workers: 2,
                    heartbeat_every: 0,
                    fault: None,
                    attempt: 0,
                },
                out,
            )
            .unwrap();
        }
    }

    fn sh(script: String) -> Command {
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg(script);
        cmd
    }

    #[test]
    fn dead_worker_is_respawned_and_matches_sweep() {
        let spec = spec();
        let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
        let shards = 3;
        let victim = nonempty_shard(&ShardPlan::new(&spec, shards).unwrap());
        let dir = scratch_dir("spawn-dead");
        record_streams(&spec, &dir, shards);

        let mut rec = Recorder::default();
        let make = |w: &griffin_fleet::WorkerSpawn| {
            if w.shard == victim && w.attempt == 0 {
                // First attempt: a torn half-line, then death.
                sh("printf '{\"ev\":\"cell_'; exit 3".into())
            } else {
                sh(format!("cat '{}/stream-{}'", dir.display(), w.shard))
            }
        };
        let mut cfg = FleetConfig::new(&dir, shards);
        cfg.retry_backoff_ms = 0;
        let fleet = run_fleet_spawned(&spec, &cfg, &make, &mut rec).unwrap();
        assert_eq!(to_csv(&fleet), to_csv(&single), "respawn == clean sweep");
        assert!(rec.0.iter().any(
            |e| matches!(e, Event::ShardFailed { shard, attempt: 0, .. } if *shard == victim)
        ));
        assert!(rec.0.contains(&Event::ShardRetried {
            shard: victim,
            attempt: 1,
            backoff_ms: 0,
            host: None,
        }));
        assert!(matches!(rec.0.last(), Some(Event::CampaignDone { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn silent_worker_is_killed_by_the_watchdog_and_retried() {
        let spec = spec();
        let single = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
        let shards = 2;
        let victim = nonempty_shard(&ShardPlan::new(&spec, shards).unwrap());
        let dir = scratch_dir("spawn-stall");
        record_streams(&spec, &dir, shards);

        let mut cfg = FleetConfig::new(&dir, shards);
        cfg.heartbeat_timeout_ms = 300;
        cfg.retry_backoff_ms = 0;
        let mut rec = Recorder::default();
        let make = |w: &griffin_fleet::WorkerSpawn| {
            if w.shard == victim && w.attempt == 0 {
                // Alive but silent: only the liveness watchdog can
                // tell. (`exec` so the kill hits the sleeping process
                // itself — a forked grandchild would keep the stdout
                // pipe open past the kill, which no real shard-worker
                // does.)
                sh("exec sleep 30".into())
            } else {
                sh(format!("cat '{}/stream-{}'", dir.display(), w.shard))
            }
        };
        let t0 = std::time::Instant::now();
        let fleet = run_fleet_spawned(&spec, &cfg, &make, &mut rec).unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(25),
            "the watchdog, not the sleep, ended the stall"
        );
        assert_eq!(to_csv(&fleet), to_csv(&single));
        let msg = rec
            .0
            .iter()
            .find_map(|e| match e {
                Event::ShardFailed { shard, msg, .. } if *shard == victim => Some(msg.clone()),
                _ => None,
            })
            .expect("the stalled attempt is reported");
        assert!(msg.contains("heartbeat timeout"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spawned_retries_exhaust_into_a_terminal_failure() {
        let spec = spec();
        let shards = 2;
        let dir = scratch_dir("spawn-exhaust");
        record_streams(&spec, &dir, shards);

        let mut cfg = FleetConfig::new(&dir, shards);
        cfg.max_shard_retries = 1;
        cfg.retry_backoff_ms = 0;
        let mut rec = Recorder::default();
        let make = |w: &griffin_fleet::WorkerSpawn| {
            if w.shard == 0 {
                sh("exit 7".into())
            } else {
                sh(format!("cat '{}/stream-{}'", dir.display(), w.shard))
            }
        };
        match run_fleet_spawned(&spec, &cfg, &make, &mut NullSink) {
            Err(FleetError::ShardExhausted {
                shard: 0,
                attempts: 2,
                ..
            }) => {}
            other => panic!("expected exhausted retries, got {other:?}"),
        }
        // And with a recording sink, the stream terminates properly.
        let _ = std::fs::remove_dir_all(&dir);
        record_streams(&spec, &dir, shards);
        let _ = run_fleet_spawned(&spec, &cfg, &make, &mut rec);
        assert!(matches!(rec.0.last(), Some(Event::CampaignFailed { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The pre-merge probe turns "something squatting on a shard cache
/// name" into a typed error naming the path, instead of an opaque io
/// failure halfway through the merge.
#[test]
fn a_file_squatting_on_a_shard_dir_is_a_typed_merge_error() {
    let dir = scratch_dir("merge-squat");
    std::fs::create_dir_all(&dir).unwrap();
    let squatter = dir.join("shard-0");
    std::fs::write(&squatter, b"not a directory").unwrap();
    match verify_shard_sources(std::slice::from_ref(&squatter)) {
        Err(e @ FleetError::ShardDirUnreadable { .. }) => {
            let FleetError::ShardDirUnreadable { dir: d, .. } = &e else {
                unreachable!()
            };
            assert_eq!(d, &squatter);
            // The operator-facing message names the path.
            assert!(e.to_string().contains("shard-0"), "{e}");
        }
        other => panic!("expected ShardDirUnreadable, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A shard cache whose permissions were stripped fails the campaign
/// with the typed error (and a terminal `campaign_failed`), not a
/// partial merge. Self-skips under root, where DAC is bypassed and
/// the directory stays readable.
#[cfg(unix)]
#[test]
fn an_unreadable_shard_dir_fails_the_merge_with_a_typed_error() {
    use std::os::unix::fs::PermissionsExt;
    let spec = spec();
    let shards = 2;
    let dir = scratch_dir("merge-denied");

    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.retry_backoff_ms = 0;
    run_fleet(&spec, &cfg, &mut Recorder::default()).unwrap();

    let victim = shard_cache_dir(&dir, 0);
    std::fs::set_permissions(&victim, std::fs::Permissions::from_mode(0o000)).unwrap();
    let readable = std::fs::read_dir(&victim).is_ok();
    if readable {
        // Root reads it anyway; nothing to assert on this machine.
        std::fs::set_permissions(&victim, std::fs::Permissions::from_mode(0o755)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }

    // Resume: every cell is journaled, so the campaign goes straight
    // to the merge — which must refuse the unreadable source.
    let mut cfg = FleetConfig::new(&dir, shards);
    cfg.resume = true;
    cfg.retry_backoff_ms = 0;
    let mut rec = Recorder::default();
    match run_fleet(&spec, &cfg, &mut rec) {
        Err(FleetError::ShardDirUnreadable { dir: d, .. }) => assert_eq!(d, victim),
        other => panic!("expected ShardDirUnreadable, got {other:?}"),
    }
    assert!(
        matches!(rec.0.last(), Some(Event::CampaignFailed { .. })),
        "the stream still terminates"
    );
    std::fs::set_permissions(&victim, std::fs::Permissions::from_mode(0o755)).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
