//! Shuffle neutrality check: on i.i.d. masks the rotation shuffler is a
//! distribution-preserving permutation, so speedups must match on/off to
//! within noise — while a lane-persistent hot pattern must recover the
//! full rotation gain. Guards the load-balancing model
//! (`cargo run --release -p griffin-sim --example shuffle_neutrality`).

use griffin_sim::config::{SimConfig, SparsityMode};
use griffin_sim::layer::GemmLayer;
use griffin_sim::pipeline::simulate_layer;
use griffin_sim::window::BorrowWindow;
use griffin_tensor::shape::GemmShape;

fn main() {
    let shape = GemmShape::new(64, 1152, 256).unwrap();
    let cfg = SimConfig::exact();
    for seed in [1u64, 2, 3] {
        let l = GemmLayer::with_densities(shape, 1.0, 0.19, seed).unwrap();
        for (d1, d2, d3) in [(6usize, 0usize, 0usize), (4, 0, 1), (8, 0, 1)] {
            let off = simulate_layer(
                &l,
                SparsityMode::SparseB {
                    win: BorrowWindow::new(d1, d2, d3),
                    shuffle: false,
                },
                &cfg,
            );
            let on = simulate_layer(
                &l,
                SparsityMode::SparseB {
                    win: BorrowWindow::new(d1, d2, d3),
                    shuffle: true,
                },
                &cfg,
            );
            println!(
                "seed {seed} B({d1},{d2},{d3}): off {:.3} on {:.3}  (ratio {:.3})",
                off.speedup(),
                on.speedup(),
                on.speedup() / off.speedup()
            );
        }
    }
    // Strong lane-persistent imbalance: lane 0 of each group hot.
    let b = griffin_tensor::mask::SparsityMask::from_fn(shape.k, shape.n, |k, n| {
        (k % 4 == 0) && (k * 31 + n * 17) % 16 < 12
    });
    let a = griffin_tensor::mask::SparsityMask::ones(shape.m, shape.k);
    let l = GemmLayer::new(shape, a, b).unwrap();
    for sh in [false, true] {
        let r = simulate_layer(
            &l,
            SparsityMode::SparseB {
                win: BorrowWindow::new(6, 0, 0),
                shuffle: sh,
            },
            &cfg,
        );
        println!("hot-lane B(6,0,0) shuffle={sh}: speedup {:.3}", r.speedup());
    }
}
