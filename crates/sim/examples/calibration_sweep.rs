//! Calibration sweep: speedups of the paper's named configurations on a
//! representative layer at Table-IV-like densities, printed next to the
//! published values. Used while developing the simulator to check that
//! magnitudes and orderings track the paper; kept as a fast smoke test
//! (`cargo run --release -p griffin-sim --example calibration_sweep`).

use griffin_sim::config::{SimConfig, SparsityMode};
use griffin_sim::layer::GemmLayer;
use griffin_sim::pipeline::simulate_layer;
use griffin_sim::window::BorrowWindow;
use griffin_tensor::shape::GemmShape;

fn main() {
    // Representative layer: M=256, K=1152, N=256; A 45% dense, B 19% dense.
    let shape = GemmShape::new(256, 1152, 256).unwrap();
    let cfg = SimConfig::default();
    // Per-channel (block of R*S=9 consecutive k) density variation as in
    // real pruned conv tensors; same block structure for activations
    // (im2col patch duplication).
    // Channel-minor layout (NHWC): K = 1152 = 9 spatial x 128 channels.
    let cin = 128usize;
    let mk = |da: f64, db: f64, seed: u64| {
        let mut g = griffin_tensor::gen::TensorGen::seeded(seed);
        let a = g.channel_minor_mask(shape.m, shape.k, da, cin, 0.8, false);
        let b = g.channel_minor_mask(shape.k, shape.n, db, cin, 0.8, true);
        GemmLayer::new(shape, a, b).unwrap()
    };

    let b_layer = mk(1.0, 0.19, 1);
    let a_layer = mk(0.45, 1.0, 2);
    let ab_layer = mk(0.45, 0.19, 3);

    println!("--- Sparse.B on DNN.B (A=1.0, B=0.19), paper fig5 ---");
    for (d1, d2, d3, sh, label) in [
        (2usize, 0usize, 0usize, false, "B(2,0,0,off)"),
        (2, 0, 0, true, "B(2,0,0,on)"),
        (4, 0, 0, false, "B(4,0,0,off) paper 1.7"),
        (4, 0, 0, true, "B(4,0,0,on)  paper ~2.4"),
        (4, 0, 1, false, "B(4,0,1,off) paper 2.5 (off?)"),
        (4, 0, 1, true, "B(4,0,1,on)"),
        (4, 0, 2, true, "B(4,0,2,on)  paper 2.9"),
        (6, 0, 0, false, "B(6,0,0,off) paper 1.9"),
        (6, 0, 0, true, "B(6,0,0,on)  paper 2.7"),
        (8, 0, 1, true, "B(8,0,1,on)  griffin confB 3.5"),
        (2, 1, 1, true, "B(2,1,1,on)  paper 2.6"),
        (2, 2, 0, true, "B(2,2,0,on)  paper 2.4"),
        (2, 0, 2, true, "B(2,0,2,on)  paper 2.4"),
    ] {
        let mode = SparsityMode::SparseB {
            win: BorrowWindow::new(d1, d2, d3),
            shuffle: sh,
        };
        let r = simulate_layer(&b_layer, mode, &cfg);
        println!("{label:32} speedup {:.2}", r.speedup());
    }

    println!("--- Sparse.A on DNN.A (A=0.45, B=1.0), paper fig6 ---");
    for (d1, d2, d3, sh, label) in [
        (2usize, 1usize, 0usize, true, "A(2,1,0,on) paper 1.83"),
        (3, 1, 0, true, "A(3,1,0,on) paper 1.89"),
        (2, 1, 1, true, "A(2,1,1,on) paper 1.93"),
        (2, 1, 2, true, "A(2,1,2,on) paper 1.97"),
        (4, 0, 1, false, "A(4,0,1,off) paper 1.28"),
        (4, 0, 1, true, "A(4,0,1,on) paper 1.79"),
        (2, 0, 0, true, "A(2,0,0,on)"),
    ] {
        let mode = SparsityMode::SparseA {
            win: BorrowWindow::new(d1, d2, d3),
            shuffle: sh,
        };
        let r = simulate_layer(&a_layer, mode, &cfg);
        println!("{label:32} speedup {:.2}", r.speedup());
    }

    println!("--- Sparse.AB on DNN.AB (A=0.45, B=0.19), paper fig7 ---");
    for (a1, a2, a3, b1, b2, b3, sh, label) in [
        (
            2usize,
            0usize,
            0usize,
            2usize,
            0usize,
            1usize,
            true,
            "AB(2,0,0,2,0,1,on) paper 3.9",
        ),
        (2, 0, 0, 4, 0, 2, true, "AB(2,0,0,4,0,2,on) paper 4.9"),
        (1, 0, 0, 3, 0, 1, true, "AB(1,0,0,3,0,1,on) paper 4.0"),
        (1, 1, 0, 3, 0, 1, false, "AB(1,1,0,3,0,1,off) paper 3.4"),
        (1, 0, 0, 3, 1, 1, false, "AB(1,0,0,3,1,1,off) paper 3.8"),
    ] {
        let mode = SparsityMode::SparseAB {
            a: BorrowWindow::new(a1, a2, a3),
            b: BorrowWindow::new(b1, b2, b3),
            shuffle: sh,
        };
        let r = simulate_layer(&ab_layer, mode, &cfg);
        println!("{label:36} speedup {:.2}", r.speedup());
    }

    println!("--- SparTen ---");
    for (a, b, label) in [
        (false, true, "SparTen.B paper 3.9"),
        (true, false, "SparTen.A paper ~2.0"),
        (true, true, "SparTen.AB"),
    ] {
        let mode = SparsityMode::SparTen {
            a_sparse: a,
            b_sparse: b,
        };
        let r = simulate_layer(
            if a && !b {
                &a_layer
            } else if b && !a {
                &b_layer
            } else {
                &ab_layer
            },
            mode,
            &cfg,
        );
        println!("{label:36} speedup {:.2}", r.speedup());
    }
}
