//! Deterministic tile sampling for the `Sampled` fidelity.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::config::Fidelity;

/// Picks the tile indices to simulate out of `n` and the weight each
/// simulated tile carries. Returns `(indices, scale)` with
/// `indices.len() · scale == n` (so totals are unbiased).
pub(crate) fn sample_indices(n: usize, fidelity: Fidelity) -> (Vec<usize>, f64) {
    match fidelity {
        Fidelity::Exact => ((0..n).collect(), 1.0),
        Fidelity::Sampled { tiles, seed } => {
            let tiles = tiles.max(1);
            if n <= tiles {
                ((0..n).collect(), 1.0)
            } else {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut all: Vec<usize> = (0..n).collect();
                all.shuffle(&mut rng);
                all.truncate(tiles);
                all.sort_unstable();
                (all, n as f64 / tiles as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_returns_everything() {
        let (idx, scale) = sample_indices(5, Fidelity::Exact);
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn small_population_is_not_sampled() {
        let (idx, scale) = sample_indices(3, Fidelity::Sampled { tiles: 8, seed: 1 });
        assert_eq!(idx.len(), 3);
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn sampling_is_deterministic_and_unbiased() {
        let f = Fidelity::Sampled { tiles: 4, seed: 9 };
        let (a, sa) = sample_indices(100, f);
        let (b, sb) = sample_indices(100, f);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!((sa * 4.0 - 100.0).abs() < 1e-12);
        assert_eq!(sa, sb);
        assert!(
            a.windows(2).all(|w| w[0] < w[1]),
            "indices sorted & distinct"
        );
    }

    #[test]
    fn zero_tiles_clamps_to_one() {
        let (idx, scale) = sample_indices(10, Fidelity::Sampled { tiles: 0, seed: 2 });
        assert_eq!(idx.len(), 1);
        assert_eq!(scale, 10.0);
    }
}
