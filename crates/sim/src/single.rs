//! Tile simulation for single-sparse architectures (§III).
//!
//! * `Sparse.B(db1, db2, db3)`: matrix B is preprocessed; its nonzeros are
//!   scheduled over `(time, lane, PE column)`. All `M0` PE rows execute
//!   the same B-driven schedule against their own A operands, so the
//!   schedule of one output-tile *column* applies to every output-tile
//!   row: the layer latency is `Σ_n cycles(n-tile) · ⌈M/M0⌉`.
//! * `Sparse.A(da1, da2, da3)`: symmetric, with on-the-fly skipping of A
//!   nonzeros over `(time, lane, PE row)` shared by all `N0` PE columns:
//!   `Σ_m cycles(m-tile) · ⌈N/N0⌉`.
//!
//! Zero detection is modelled identically for both sides — the hardware
//! difference (offline preprocessing vs on-the-fly arbitration) shows up
//! in the *cost model* (metadata storage, per-PE control logic), not in
//! the cycle count, which both the paper's Figure 2 walk-through and its
//! simulator treat through the same borrowing window abstraction.

use griffin_tensor::block::{ATileView, BTileView};

use crate::config::SimConfig;
use crate::engine::{schedule_multi, schedule_with, OpGrid, Schedule};
use crate::grid::{build_a_grid, build_a_grids, build_b_grid, build_b_grids};
use crate::layer::GemmLayer;
use crate::sampling::sample_indices;
use crate::scratch::{GridKey, SchedKey, SimScratch};
use crate::shuffle::LaneMap;
use crate::window::{BorrowWindow, EffectiveWindow};

/// One member of a single-sparse architecture family: its borrowing
/// window and shuffle flag — the only two axes that change the tile
/// schedule within one sparsity mode.
pub type ArchVariant = (BorrowWindow, bool);

/// Accumulated schedule statistics for a layer, before bandwidth floors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScheduleAccum {
    /// Total schedule cycles for the layer.
    pub cycles: f64,
    /// Total effectual ops executed.
    pub ops: f64,
    /// Total borrow events.
    pub borrowed: f64,
    /// Total starved cycles.
    pub starved: f64,
    /// Whether sampling was used.
    pub sampled: bool,
}

impl ScheduleAccum {
    fn add(&mut self, s: Schedule, weight: f64) {
        self.cycles += s.cycles as f64 * weight;
        self.ops += s.executed as f64 * weight;
        self.borrowed += s.borrowed as f64 * weight;
        self.starved += s.starved_cycles as f64 * weight;
    }
}

/// Simulates a layer on a `Sparse.B` architecture, returning schedule
/// statistics (the pipeline adds bandwidth floors).
pub fn simulate_sparse_b(
    layer: &GemmLayer,
    win: BorrowWindow,
    shuffle: bool,
    cfg: &SimConfig,
) -> ScheduleAccum {
    simulate_sparse_b_with(layer, win, shuffle, cfg, &mut SimScratch::new())
}

/// [`simulate_sparse_b`] with caller-provided scratch — the zero-alloc
/// steady-state path for campaign workers.
pub fn simulate_sparse_b_with(
    layer: &GemmLayer,
    win: BorrowWindow,
    shuffle: bool,
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> ScheduleAccum {
    let core = cfg.core;
    let tiles = layer.shape.tiles(core);
    let lanes = LaneMap::from_flag(shuffle);
    let eff = EffectiveWindow::for_b(win);
    let (picked, scale) = sample_indices(tiles.nt, cfg.fidelity);

    let mut acc = ScheduleAccum {
        sampled: scale > 1.0,
        ..Default::default()
    };
    for &n_tile in &picked {
        let s = if scratch.scope.is_some() {
            // Reuse scope: the grid is shared across every architecture
            // sweeping this workload.
            let key = GridKey {
                layer: scratch.layer_idx,
                tile: n_tile as u32,
                rotate: shuffle,
                b_side: true,
                core,
                plane: scratch.plane,
            };
            if !scratch.grids.contains_key(&key) {
                let mut g = OpGrid::default();
                let view = BTileView::new(&layer.b, core, n_tile * core.n0);
                build_b_grid(&mut g, &mut scratch.span, &view, lanes);
                scratch.grids.insert(key, g);
            }
            schedule_with(&scratch.grids[&key], eff, cfg.priority, &mut scratch.sched)
        } else {
            let view = BTileView::new(&layer.b, core, n_tile * core.n0);
            build_b_grid(&mut scratch.grid, &mut scratch.span, &view, lanes);
            schedule_with(&scratch.grid, eff, cfg.priority, &mut scratch.sched)
        };
        // The same B schedule runs once per output-tile row; ops execute
        // on all M0 rows simultaneously (each B nonzero feeds M0 MACs).
        acc.add(s, scale * tiles.mt as f64);
    }
    acc.ops *= core.m0 as f64;
    acc
}

/// Simulates K seed-variant layers of one shape on a `Sparse.B`
/// architecture in a single batched pass.
///
/// The layers must share their [`GemmShape`](griffin_tensor::shape::GemmShape)
/// (seed variants of one workload do); per sampled tile the op grids of
/// all K planes are built word-parallel by [`build_b_grids`] and then
/// scheduled per plane, so the returned accumulators are **exactly**
/// what K independent [`simulate_sparse_b_with`] calls produce (pinned
/// by batch-equivalence tests). Inside a reuse scope each plane's grids
/// are memoized under its batch plane index, so an architecture sweep
/// over the batch builds every grid once.
pub fn simulate_sparse_b_batch(
    layers: &[&GemmLayer],
    win: BorrowWindow,
    shuffle: bool,
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> Vec<ScheduleAccum> {
    let Some(first) = layers.first() else {
        return Vec::new();
    };
    let core = cfg.core;
    let tiles = first.shape.tiles(core);
    for l in layers {
        assert_eq!(l.shape, first.shape, "batched layers must share a shape");
    }
    let planes = layers.len();
    let lanes = LaneMap::from_flag(shuffle);
    let eff = EffectiveWindow::for_b(win);
    let (picked, scale) = sample_indices(tiles.nt, cfg.fidelity);

    let mut accs = vec![
        ScheduleAccum {
            sampled: scale > 1.0,
            ..Default::default()
        };
        planes
    ];
    let layer_idx = scratch.layer_idx;
    for &n_tile in &picked {
        let key_of = |p: usize| GridKey {
            layer: layer_idx,
            tile: n_tile as u32,
            rotate: shuffle,
            b_side: true,
            core,
            plane: p as u32,
        };
        if scratch.scope.is_some() {
            // All-or-nothing: the scope token covers the whole batch, so
            // either every plane's grid is memoized or none is.
            if !(0..planes).all(|p| scratch.grids.contains_key(&key_of(p))) {
                let views: Vec<BTileView<'_>> = layers
                    .iter()
                    .map(|l| BTileView::new(&l.b, core, n_tile * core.n0))
                    .collect();
                let mut grids = vec![OpGrid::default(); planes];
                build_b_grids(&mut grids, &mut scratch.span, &views, lanes);
                for (p, g) in grids.into_iter().enumerate() {
                    scratch.grids.insert(key_of(p), g);
                }
            }
            let SimScratch { grids, sched, .. } = &mut *scratch;
            for (p, acc) in accs.iter_mut().enumerate() {
                let s = schedule_with(&grids[&key_of(p)], eff, cfg.priority, sched);
                acc.add(s, scale * tiles.mt as f64);
            }
        } else {
            let SimScratch {
                batch_grids,
                span,
                sched,
                ..
            } = &mut *scratch;
            if batch_grids.len() < planes {
                batch_grids.resize_with(planes, OpGrid::default);
            }
            let views: Vec<BTileView<'_>> = layers
                .iter()
                .map(|l| BTileView::new(&l.b, core, n_tile * core.n0))
                .collect();
            build_b_grids(&mut batch_grids[..planes], span, &views, lanes);
            for (p, acc) in accs.iter_mut().enumerate() {
                let s = schedule_with(&batch_grids[p], eff, cfg.priority, sched);
                acc.add(s, scale * tiles.mt as f64);
            }
        }
    }
    for acc in &mut accs {
        acc.ops *= core.m0 as f64;
    }
    accs
}

/// Simulates one layer under a whole `Sparse.B` architecture *family*
/// in a single pass, returning one accumulator per variant.
///
/// Variants are grouped by shuffle flag (the only axis that changes the
/// tile grid); each group's windows go through one
/// [`schedule_multi`] call per tile, so same-reach windows are served
/// by saturating-depth replay instead of independent event-core passes.
/// Inside a reuse scope, schedules are additionally memoized in the
/// window-keyed schedule cache next to the grid cache. The results are
/// **bitwise identical** to per-variant [`simulate_sparse_b_with`]
/// calls (pinned by differential tests).
pub fn simulate_sparse_b_multi_arch(
    layer: &GemmLayer,
    variants: &[ArchVariant],
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> Vec<ScheduleAccum> {
    let core = cfg.core;
    let tiles = layer.shape.tiles(core);
    let effs: Vec<EffectiveWindow> = variants
        .iter()
        .map(|&(w, _)| EffectiveWindow::for_b(w))
        .collect();
    let mut by_rot: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for (v, &(_, shuffle)) in variants.iter().enumerate() {
        by_rot[usize::from(shuffle)].push(v);
    }
    let (picked, scale) = sample_indices(tiles.nt, cfg.fidelity);

    let mut accs = vec![
        ScheduleAccum {
            sampled: scale > 1.0,
            ..Default::default()
        };
        variants.len()
    ];
    let mut group_wins: Vec<EffectiveWindow> = Vec::new();
    let mut miss_keys: Vec<SchedKey> = Vec::new();
    let mut multi_out: Vec<Schedule> = Vec::new();
    for &n_tile in &picked {
        for (rot, members) in [(false, &by_rot[0]), (true, &by_rot[1])] {
            if members.is_empty() {
                continue;
            }
            let lanes = LaneMap::from_flag(rot);
            if scratch.scope.is_some() {
                let gkey = GridKey {
                    layer: scratch.layer_idx,
                    tile: n_tile as u32,
                    rotate: rot,
                    b_side: true,
                    core,
                    plane: scratch.plane,
                };
                if !scratch.grids.contains_key(&gkey) {
                    let mut g = OpGrid::default();
                    let view = BTileView::new(&layer.b, core, n_tile * core.n0);
                    build_b_grid(&mut g, &mut scratch.span, &view, lanes);
                    scratch.grids.insert(gkey, g);
                }
                let SimScratch {
                    grids,
                    scheds,
                    sched,
                    share_stats,
                    ..
                } = &mut *scratch;
                let grid = &grids[&gkey];
                group_wins.clear();
                miss_keys.clear();
                for &v in members {
                    let skey = SchedKey {
                        grid: gkey,
                        win: effs[v],
                        priority: cfg.priority,
                    };
                    if !scheds.contains_key(&skey) && !miss_keys.contains(&skey) {
                        miss_keys.push(skey);
                        group_wins.push(effs[v]);
                    }
                }
                if !group_wins.is_empty() {
                    let sh = schedule_multi(grid, &group_wins, cfg.priority, sched, &mut multi_out);
                    share_stats.multi_passes += sh.scheduled as u64;
                    share_stats.multi_replayed += sh.replayed as u64;
                    for (k, s) in miss_keys.iter().zip(&multi_out) {
                        scheds.insert(*k, *s);
                    }
                }
                share_stats.multi_windows += members.len() as u64;
                share_stats.sched_cache_hits += (members.len() - group_wins.len()) as u64;
                for &v in members {
                    let skey = SchedKey {
                        grid: gkey,
                        win: effs[v],
                        priority: cfg.priority,
                    };
                    accs[v].add(scheds[&skey], scale * tiles.mt as f64);
                }
            } else {
                let view = BTileView::new(&layer.b, core, n_tile * core.n0);
                build_b_grid(&mut scratch.grid, &mut scratch.span, &view, lanes);
                group_wins.clear();
                group_wins.extend(members.iter().map(|&v| effs[v]));
                let sh = schedule_multi(
                    &scratch.grid,
                    &group_wins,
                    cfg.priority,
                    &mut scratch.sched,
                    &mut multi_out,
                );
                scratch.share_stats.multi_windows += members.len() as u64;
                scratch.share_stats.multi_passes += sh.scheduled as u64;
                scratch.share_stats.multi_replayed += sh.replayed as u64;
                for (&v, s) in members.iter().zip(&multi_out) {
                    accs[v].add(*s, scale * tiles.mt as f64);
                }
            }
        }
    }
    for acc in &mut accs {
        acc.ops *= core.m0 as f64;
    }
    accs
}

/// Batched × family form: K seed-variant same-shape layers under V
/// `Sparse.B` architecture variants, returning `[variant][plane]`
/// accumulators — the cross product that one sweep cache-miss group
/// needs. Exactly equivalent to V × K independent
/// [`simulate_sparse_b_with`] calls.
pub fn simulate_sparse_b_multi_arch_batch(
    layers: &[&GemmLayer],
    variants: &[ArchVariant],
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> Vec<Vec<ScheduleAccum>> {
    let Some(first) = layers.first() else {
        return vec![Vec::new(); variants.len()];
    };
    let core = cfg.core;
    let tiles = first.shape.tiles(core);
    for l in layers {
        assert_eq!(l.shape, first.shape, "batched layers must share a shape");
    }
    let planes = layers.len();
    let effs: Vec<EffectiveWindow> = variants
        .iter()
        .map(|&(w, _)| EffectiveWindow::for_b(w))
        .collect();
    let mut by_rot: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for (v, &(_, shuffle)) in variants.iter().enumerate() {
        by_rot[usize::from(shuffle)].push(v);
    }
    let (picked, scale) = sample_indices(tiles.nt, cfg.fidelity);

    let mut accs = vec![
        vec![
            ScheduleAccum {
                sampled: scale > 1.0,
                ..Default::default()
            };
            planes
        ];
        variants.len()
    ];
    let layer_idx = scratch.layer_idx;
    let mut group_wins: Vec<EffectiveWindow> = Vec::new();
    let mut miss_keys: Vec<SchedKey> = Vec::new();
    let mut multi_out: Vec<Schedule> = Vec::new();
    for &n_tile in &picked {
        for (rot, members) in [(false, &by_rot[0]), (true, &by_rot[1])] {
            if members.is_empty() {
                continue;
            }
            let lanes = LaneMap::from_flag(rot);
            let key_of = |p: usize| GridKey {
                layer: layer_idx,
                tile: n_tile as u32,
                rotate: rot,
                b_side: true,
                core,
                plane: p as u32,
            };
            if scratch.scope.is_some() {
                if !(0..planes).all(|p| scratch.grids.contains_key(&key_of(p))) {
                    let views: Vec<BTileView<'_>> = layers
                        .iter()
                        .map(|l| BTileView::new(&l.b, core, n_tile * core.n0))
                        .collect();
                    let mut grids = vec![OpGrid::default(); planes];
                    build_b_grids(&mut grids, &mut scratch.span, &views, lanes);
                    for (p, g) in grids.into_iter().enumerate() {
                        scratch.grids.insert(key_of(p), g);
                    }
                }
                let SimScratch {
                    grids,
                    scheds,
                    sched,
                    share_stats,
                    ..
                } = &mut *scratch;
                // `p` keys the grid cache and the per-variant inner
                // accumulators at once, so a range loop reads clearer
                // than a zip over `accs`' outer (variant) axis.
                #[allow(clippy::needless_range_loop)]
                for p in 0..planes {
                    let gkey = key_of(p);
                    let grid = &grids[&gkey];
                    group_wins.clear();
                    miss_keys.clear();
                    for &v in members {
                        let skey = SchedKey {
                            grid: gkey,
                            win: effs[v],
                            priority: cfg.priority,
                        };
                        if !scheds.contains_key(&skey) && !miss_keys.contains(&skey) {
                            miss_keys.push(skey);
                            group_wins.push(effs[v]);
                        }
                    }
                    if !group_wins.is_empty() {
                        let sh =
                            schedule_multi(grid, &group_wins, cfg.priority, sched, &mut multi_out);
                        share_stats.multi_passes += sh.scheduled as u64;
                        share_stats.multi_replayed += sh.replayed as u64;
                        for (k, s) in miss_keys.iter().zip(&multi_out) {
                            scheds.insert(*k, *s);
                        }
                    }
                    share_stats.multi_windows += members.len() as u64;
                    share_stats.sched_cache_hits += (members.len() - group_wins.len()) as u64;
                    for &v in members {
                        let skey = SchedKey {
                            grid: gkey,
                            win: effs[v],
                            priority: cfg.priority,
                        };
                        accs[v][p].add(scheds[&skey], scale * tiles.mt as f64);
                    }
                }
            } else {
                let SimScratch {
                    batch_grids,
                    span,
                    sched,
                    share_stats,
                    ..
                } = &mut *scratch;
                if batch_grids.len() < planes {
                    batch_grids.resize_with(planes, OpGrid::default);
                }
                let views: Vec<BTileView<'_>> = layers
                    .iter()
                    .map(|l| BTileView::new(&l.b, core, n_tile * core.n0))
                    .collect();
                build_b_grids(&mut batch_grids[..planes], span, &views, lanes);
                for (p, grid) in batch_grids[..planes].iter().enumerate() {
                    group_wins.clear();
                    group_wins.extend(members.iter().map(|&v| effs[v]));
                    let sh = schedule_multi(grid, &group_wins, cfg.priority, sched, &mut multi_out);
                    share_stats.multi_windows += members.len() as u64;
                    share_stats.multi_passes += sh.scheduled as u64;
                    share_stats.multi_replayed += sh.replayed as u64;
                    for (&v, s) in members.iter().zip(&multi_out) {
                        accs[v][p].add(*s, scale * tiles.mt as f64);
                    }
                }
            }
        }
    }
    for row in &mut accs {
        for acc in row {
            acc.ops *= core.m0 as f64;
        }
    }
    accs
}

/// Simulates a layer on a `Sparse.A` architecture.
pub fn simulate_sparse_a(
    layer: &GemmLayer,
    win: BorrowWindow,
    shuffle: bool,
    cfg: &SimConfig,
) -> ScheduleAccum {
    simulate_sparse_a_with(layer, win, shuffle, cfg, &mut SimScratch::new())
}

/// [`simulate_sparse_a`] with caller-provided scratch.
pub fn simulate_sparse_a_with(
    layer: &GemmLayer,
    win: BorrowWindow,
    shuffle: bool,
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> ScheduleAccum {
    let core = cfg.core;
    let tiles = layer.shape.tiles(core);
    let lanes = LaneMap::from_flag(shuffle);
    let eff = EffectiveWindow::for_a(win);
    let (picked, scale) = sample_indices(tiles.mt, cfg.fidelity);

    let mut acc = ScheduleAccum {
        sampled: scale > 1.0,
        ..Default::default()
    };
    for &m_tile in &picked {
        let s = if scratch.scope.is_some() {
            let key = GridKey {
                layer: scratch.layer_idx,
                tile: m_tile as u32,
                rotate: shuffle,
                b_side: false,
                core,
                plane: scratch.plane,
            };
            if !scratch.grids.contains_key(&key) {
                let mut g = OpGrid::default();
                let view = ATileView::new(&layer.a, core, m_tile * core.m0);
                build_a_grid(&mut g, &mut scratch.span, &view, lanes);
                scratch.grids.insert(key, g);
            }
            schedule_with(&scratch.grids[&key], eff, cfg.priority, &mut scratch.sched)
        } else {
            let view = ATileView::new(&layer.a, core, m_tile * core.m0);
            build_a_grid(&mut scratch.grid, &mut scratch.span, &view, lanes);
            schedule_with(&scratch.grid, eff, cfg.priority, &mut scratch.sched)
        };
        acc.add(s, scale * tiles.nt as f64);
    }
    acc.ops *= core.n0 as f64;
    acc
}

/// Batched counterpart of [`simulate_sparse_a_with`]: K seed-variant
/// same-shape layers per pass, with the same exact-equivalence contract
/// as [`simulate_sparse_b_batch`].
pub fn simulate_sparse_a_batch(
    layers: &[&GemmLayer],
    win: BorrowWindow,
    shuffle: bool,
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> Vec<ScheduleAccum> {
    let Some(first) = layers.first() else {
        return Vec::new();
    };
    let core = cfg.core;
    let tiles = first.shape.tiles(core);
    for l in layers {
        assert_eq!(l.shape, first.shape, "batched layers must share a shape");
    }
    let planes = layers.len();
    let lanes = LaneMap::from_flag(shuffle);
    let eff = EffectiveWindow::for_a(win);
    let (picked, scale) = sample_indices(tiles.mt, cfg.fidelity);

    let mut accs = vec![
        ScheduleAccum {
            sampled: scale > 1.0,
            ..Default::default()
        };
        planes
    ];
    let layer_idx = scratch.layer_idx;
    for &m_tile in &picked {
        let key_of = |p: usize| GridKey {
            layer: layer_idx,
            tile: m_tile as u32,
            rotate: shuffle,
            b_side: false,
            core,
            plane: p as u32,
        };
        if scratch.scope.is_some() {
            if !(0..planes).all(|p| scratch.grids.contains_key(&key_of(p))) {
                let views: Vec<ATileView<'_>> = layers
                    .iter()
                    .map(|l| ATileView::new(&l.a, core, m_tile * core.m0))
                    .collect();
                let mut grids = vec![OpGrid::default(); planes];
                build_a_grids(&mut grids, &mut scratch.span, &views, lanes);
                for (p, g) in grids.into_iter().enumerate() {
                    scratch.grids.insert(key_of(p), g);
                }
            }
            let SimScratch { grids, sched, .. } = &mut *scratch;
            for (p, acc) in accs.iter_mut().enumerate() {
                let s = schedule_with(&grids[&key_of(p)], eff, cfg.priority, sched);
                acc.add(s, scale * tiles.nt as f64);
            }
        } else {
            let SimScratch {
                batch_grids,
                span,
                sched,
                ..
            } = &mut *scratch;
            if batch_grids.len() < planes {
                batch_grids.resize_with(planes, OpGrid::default);
            }
            let views: Vec<ATileView<'_>> = layers
                .iter()
                .map(|l| ATileView::new(&l.a, core, m_tile * core.m0))
                .collect();
            build_a_grids(&mut batch_grids[..planes], span, &views, lanes);
            for (p, acc) in accs.iter_mut().enumerate() {
                let s = schedule_with(&batch_grids[p], eff, cfg.priority, sched);
                acc.add(s, scale * tiles.nt as f64);
            }
        }
    }
    for acc in &mut accs {
        acc.ops *= core.n0 as f64;
    }
    accs
}

/// `Sparse.A` counterpart of [`simulate_sparse_b_multi_arch`]: one
/// layer under V architecture variants, one accumulator per variant,
/// bitwise identical to per-variant [`simulate_sparse_a_with`] calls.
pub fn simulate_sparse_a_multi_arch(
    layer: &GemmLayer,
    variants: &[ArchVariant],
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> Vec<ScheduleAccum> {
    let core = cfg.core;
    let tiles = layer.shape.tiles(core);
    let effs: Vec<EffectiveWindow> = variants
        .iter()
        .map(|&(w, _)| EffectiveWindow::for_a(w))
        .collect();
    let mut by_rot: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for (v, &(_, shuffle)) in variants.iter().enumerate() {
        by_rot[usize::from(shuffle)].push(v);
    }
    let (picked, scale) = sample_indices(tiles.mt, cfg.fidelity);

    let mut accs = vec![
        ScheduleAccum {
            sampled: scale > 1.0,
            ..Default::default()
        };
        variants.len()
    ];
    let mut group_wins: Vec<EffectiveWindow> = Vec::new();
    let mut miss_keys: Vec<SchedKey> = Vec::new();
    let mut multi_out: Vec<Schedule> = Vec::new();
    for &m_tile in &picked {
        for (rot, members) in [(false, &by_rot[0]), (true, &by_rot[1])] {
            if members.is_empty() {
                continue;
            }
            let lanes = LaneMap::from_flag(rot);
            if scratch.scope.is_some() {
                let gkey = GridKey {
                    layer: scratch.layer_idx,
                    tile: m_tile as u32,
                    rotate: rot,
                    b_side: false,
                    core,
                    plane: scratch.plane,
                };
                if !scratch.grids.contains_key(&gkey) {
                    let mut g = OpGrid::default();
                    let view = ATileView::new(&layer.a, core, m_tile * core.m0);
                    build_a_grid(&mut g, &mut scratch.span, &view, lanes);
                    scratch.grids.insert(gkey, g);
                }
                let SimScratch {
                    grids,
                    scheds,
                    sched,
                    share_stats,
                    ..
                } = &mut *scratch;
                let grid = &grids[&gkey];
                group_wins.clear();
                miss_keys.clear();
                for &v in members {
                    let skey = SchedKey {
                        grid: gkey,
                        win: effs[v],
                        priority: cfg.priority,
                    };
                    if !scheds.contains_key(&skey) && !miss_keys.contains(&skey) {
                        miss_keys.push(skey);
                        group_wins.push(effs[v]);
                    }
                }
                if !group_wins.is_empty() {
                    let sh = schedule_multi(grid, &group_wins, cfg.priority, sched, &mut multi_out);
                    share_stats.multi_passes += sh.scheduled as u64;
                    share_stats.multi_replayed += sh.replayed as u64;
                    for (k, s) in miss_keys.iter().zip(&multi_out) {
                        scheds.insert(*k, *s);
                    }
                }
                share_stats.multi_windows += members.len() as u64;
                share_stats.sched_cache_hits += (members.len() - group_wins.len()) as u64;
                for &v in members {
                    let skey = SchedKey {
                        grid: gkey,
                        win: effs[v],
                        priority: cfg.priority,
                    };
                    accs[v].add(scheds[&skey], scale * tiles.nt as f64);
                }
            } else {
                let view = ATileView::new(&layer.a, core, m_tile * core.m0);
                build_a_grid(&mut scratch.grid, &mut scratch.span, &view, lanes);
                group_wins.clear();
                group_wins.extend(members.iter().map(|&v| effs[v]));
                let sh = schedule_multi(
                    &scratch.grid,
                    &group_wins,
                    cfg.priority,
                    &mut scratch.sched,
                    &mut multi_out,
                );
                scratch.share_stats.multi_windows += members.len() as u64;
                scratch.share_stats.multi_passes += sh.scheduled as u64;
                scratch.share_stats.multi_replayed += sh.replayed as u64;
                for (&v, s) in members.iter().zip(&multi_out) {
                    accs[v].add(*s, scale * tiles.nt as f64);
                }
            }
        }
    }
    for acc in &mut accs {
        acc.ops *= core.n0 as f64;
    }
    accs
}

/// Batched × family form for `Sparse.A`: `[variant][plane]`
/// accumulators with the same exact-equivalence contract as
/// [`simulate_sparse_b_multi_arch_batch`].
pub fn simulate_sparse_a_multi_arch_batch(
    layers: &[&GemmLayer],
    variants: &[ArchVariant],
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> Vec<Vec<ScheduleAccum>> {
    let Some(first) = layers.first() else {
        return vec![Vec::new(); variants.len()];
    };
    let core = cfg.core;
    let tiles = first.shape.tiles(core);
    for l in layers {
        assert_eq!(l.shape, first.shape, "batched layers must share a shape");
    }
    let planes = layers.len();
    let effs: Vec<EffectiveWindow> = variants
        .iter()
        .map(|&(w, _)| EffectiveWindow::for_a(w))
        .collect();
    let mut by_rot: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for (v, &(_, shuffle)) in variants.iter().enumerate() {
        by_rot[usize::from(shuffle)].push(v);
    }
    let (picked, scale) = sample_indices(tiles.mt, cfg.fidelity);

    let mut accs = vec![
        vec![
            ScheduleAccum {
                sampled: scale > 1.0,
                ..Default::default()
            };
            planes
        ];
        variants.len()
    ];
    let layer_idx = scratch.layer_idx;
    let mut group_wins: Vec<EffectiveWindow> = Vec::new();
    let mut miss_keys: Vec<SchedKey> = Vec::new();
    let mut multi_out: Vec<Schedule> = Vec::new();
    for &m_tile in &picked {
        for (rot, members) in [(false, &by_rot[0]), (true, &by_rot[1])] {
            if members.is_empty() {
                continue;
            }
            let lanes = LaneMap::from_flag(rot);
            let key_of = |p: usize| GridKey {
                layer: layer_idx,
                tile: m_tile as u32,
                rotate: rot,
                b_side: false,
                core,
                plane: p as u32,
            };
            if scratch.scope.is_some() {
                if !(0..planes).all(|p| scratch.grids.contains_key(&key_of(p))) {
                    let views: Vec<ATileView<'_>> = layers
                        .iter()
                        .map(|l| ATileView::new(&l.a, core, m_tile * core.m0))
                        .collect();
                    let mut grids = vec![OpGrid::default(); planes];
                    build_a_grids(&mut grids, &mut scratch.span, &views, lanes);
                    for (p, g) in grids.into_iter().enumerate() {
                        scratch.grids.insert(key_of(p), g);
                    }
                }
                let SimScratch {
                    grids,
                    scheds,
                    sched,
                    share_stats,
                    ..
                } = &mut *scratch;
                // `p` keys the grid cache and the per-variant inner
                // accumulators at once, so a range loop reads clearer
                // than a zip over `accs`' outer (variant) axis.
                #[allow(clippy::needless_range_loop)]
                for p in 0..planes {
                    let gkey = key_of(p);
                    let grid = &grids[&gkey];
                    group_wins.clear();
                    miss_keys.clear();
                    for &v in members {
                        let skey = SchedKey {
                            grid: gkey,
                            win: effs[v],
                            priority: cfg.priority,
                        };
                        if !scheds.contains_key(&skey) && !miss_keys.contains(&skey) {
                            miss_keys.push(skey);
                            group_wins.push(effs[v]);
                        }
                    }
                    if !group_wins.is_empty() {
                        let sh =
                            schedule_multi(grid, &group_wins, cfg.priority, sched, &mut multi_out);
                        share_stats.multi_passes += sh.scheduled as u64;
                        share_stats.multi_replayed += sh.replayed as u64;
                        for (k, s) in miss_keys.iter().zip(&multi_out) {
                            scheds.insert(*k, *s);
                        }
                    }
                    share_stats.multi_windows += members.len() as u64;
                    share_stats.sched_cache_hits += (members.len() - group_wins.len()) as u64;
                    for &v in members {
                        let skey = SchedKey {
                            grid: gkey,
                            win: effs[v],
                            priority: cfg.priority,
                        };
                        accs[v][p].add(scheds[&skey], scale * tiles.nt as f64);
                    }
                }
            } else {
                let SimScratch {
                    batch_grids,
                    span,
                    sched,
                    share_stats,
                    ..
                } = &mut *scratch;
                if batch_grids.len() < planes {
                    batch_grids.resize_with(planes, OpGrid::default);
                }
                let views: Vec<ATileView<'_>> = layers
                    .iter()
                    .map(|l| ATileView::new(&l.a, core, m_tile * core.m0))
                    .collect();
                build_a_grids(&mut batch_grids[..planes], span, &views, lanes);
                for (p, grid) in batch_grids[..planes].iter().enumerate() {
                    group_wins.clear();
                    group_wins.extend(members.iter().map(|&v| effs[v]));
                    let sh = schedule_multi(grid, &group_wins, cfg.priority, sched, &mut multi_out);
                    share_stats.multi_windows += members.len() as u64;
                    share_stats.multi_passes += sh.scheduled as u64;
                    share_stats.multi_replayed += sh.replayed as u64;
                    for (&v, s) in members.iter().zip(&multi_out) {
                        accs[v][p].add(*s, scale * tiles.nt as f64);
                    }
                }
            }
        }
    }
    for row in &mut accs {
        for acc in row {
            acc.ops *= core.n0 as f64;
        }
    }
    accs
}

/// Dense baseline "schedule": every tile takes `kt` cycles.
pub fn simulate_dense(layer: &GemmLayer, cfg: &SimConfig) -> ScheduleAccum {
    let tiles = layer.shape.tiles(cfg.core);
    let cycles = layer.shape.dense_cycles(cfg.core) as f64;
    ScheduleAccum {
        cycles,
        // Every slot performs a (possibly zero-operand) MAC each cycle.
        ops: (tiles.mt * tiles.nt * tiles.kt) as f64 * cfg.core.macs() as f64,
        borrowed: 0.0,
        starved: 0.0,
        sampled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_tensor::shape::GemmShape;

    use griffin_tensor::shape::CoreDims;

    fn cfg() -> SimConfig {
        SimConfig::exact()
    }

    fn layer(m: usize, k: usize, n: usize, da: f64, db: f64, seed: u64) -> GemmLayer {
        GemmLayer::with_densities(GemmShape::new(m, k, n).unwrap(), da, db, seed).unwrap()
    }

    #[test]
    fn dense_layer_on_sparse_b_takes_dense_cycles() {
        let l = layer(16, 128, 32, 1.0, 1.0, 1);
        let acc = simulate_sparse_b(&l, BorrowWindow::new(4, 0, 1), true, &cfg());
        assert_eq!(acc.cycles, l.shape.dense_cycles(CoreDims::PAPER) as f64);
    }

    #[test]
    fn sparse_b_speeds_up_pruned_weights() {
        // Averaged over several mask seeds so the assertion tracks the
        // expected speedup, not one realization of one RNG stream
        // (thresholds tuned to a single seed re-fail whenever the RNG
        // implementation changes).
        let mut sum = 0.0;
        for seed in 1..=4 {
            let l = layer(16, 256, 32, 1.0, 0.2, seed);
            let dense = l.shape.dense_cycles(CoreDims::PAPER) as f64;
            let acc = simulate_sparse_b(&l, BorrowWindow::new(4, 0, 1), true, &cfg());
            let speedup = dense / acc.cycles;
            assert!(speedup <= 5.0 + 1e-9, "cannot exceed 1 + db1");
            sum += speedup;
        }
        let mean = sum / 4.0;
        assert!(mean > 1.9, "mean speedup {mean}");
    }

    #[test]
    fn sparse_a_speeds_up_relu_activations() {
        let l = layer(64, 1024, 32, 0.5, 1.0, 3);
        let dense = l.shape.dense_cycles(CoreDims::PAPER) as f64;
        let acc = simulate_sparse_a(&l, BorrowWindow::new(2, 1, 0), true, &cfg());
        let speedup = dense / acc.cycles;
        assert!(speedup > 1.35, "speedup {speedup}");
        assert!(speedup < 3.0 + 1e-9);
    }

    #[test]
    fn shuffle_improves_imbalanced_b() {
        // Clustered sparsity concentrates nonzeros in few lanes; shuffle
        // should recover performance (paper observation 3, Figure 5).
        use griffin_tensor::gen::TensorGen;
        let shape = GemmShape::new(16, 512, 16).unwrap();
        let mut g = TensorGen::seeded(11);
        let a = g.bernoulli_mask(shape.m, shape.k, 1.0);
        // Hot lane: all work lands on lane 0 of every 4-lane rotation
        // group, so the local 4x4 rotation can spread it over the group.
        let b = griffin_tensor::mask::SparsityMask::from_fn(shape.k, shape.n, |k, n| {
            (k % 4 == 0) && (k * 31 + n * 17) % 8 < 7
        });
        let l = GemmLayer::new(shape, a, b).unwrap();
        let off = simulate_sparse_b(&l, BorrowWindow::new(6, 0, 0), false, &cfg());
        let on = simulate_sparse_b(&l, BorrowWindow::new(6, 0, 0), true, &cfg());
        assert!(
            on.cycles < off.cycles * 0.8,
            "shuffle on {} vs off {}",
            on.cycles,
            off.cycles
        );
    }

    #[test]
    fn dense_accumulator_counts_all_slots() {
        let l = layer(16, 64, 32, 1.0, 1.0, 4);
        let acc = simulate_dense(&l, &cfg());
        assert_eq!(acc.cycles, l.shape.dense_cycles(CoreDims::PAPER) as f64);
        assert_eq!(acc.ops, acc.cycles * 1024.0);
    }

    #[test]
    fn sampling_approximates_exact() {
        let l = layer(32, 256, 256, 1.0, 0.25, 5);
        let exact = simulate_sparse_b(&l, BorrowWindow::new(4, 0, 1), true, &SimConfig::exact());
        let sampled_cfg = SimConfig {
            fidelity: crate::config::Fidelity::Sampled { tiles: 6, seed: 7 },
            ..SimConfig::default()
        };
        let sampled = simulate_sparse_b(&l, BorrowWindow::new(4, 0, 1), true, &sampled_cfg);
        assert!(sampled.sampled);
        let rel = (sampled.cycles - exact.cycles).abs() / exact.cycles;
        assert!(
            rel < 0.15,
            "sampled {} vs exact {} (rel {rel})",
            sampled.cycles,
            exact.cycles
        );
    }

    #[test]
    fn bigger_db1_never_slows_down() {
        let l = layer(16, 256, 32, 1.0, 0.3, 6);
        let s2 = simulate_sparse_b(&l, BorrowWindow::new(2, 0, 0), true, &cfg());
        let s4 = simulate_sparse_b(&l, BorrowWindow::new(4, 0, 0), true, &cfg());
        let s8 = simulate_sparse_b(&l, BorrowWindow::new(8, 0, 0), true, &cfg());
        assert!(s4.cycles <= s2.cycles);
        assert!(s8.cycles <= s4.cycles);
    }
}
