//! The greedy borrowing scheduler.
//!
//! Every architecture in the paper reduces to the same scheduling problem:
//! a grid of *effectual operations* indexed by blocked coordinates
//! `(t, lane, row, col)` must be drained by a machine with one slot per
//! `(lane, row, col)`, where a slot may execute an op whose coordinates
//! exceed its own by at most the architecture's borrowing window
//! ([`EffectiveWindow`]). Time is special: the hardware buffers
//! (ABUF/BBUF) hold a sliding window of `depth` original time rows
//! starting at the oldest unfinished row `H`; a slot can only see ops with
//! `t ≤ H + depth − 1`, and `H` advances once row `H` is fully consumed.
//! This models the output-synchronization and buffer-fullness stalls of
//! the paper's pipeline in one mechanism.
//!
//! The per-cycle arbitration is greedy with the priority scheme of
//! Bit-Tactical (which the paper adopts, §III): a slot first executes its
//! own pending op if one is in the window, otherwise it borrows the
//! earliest reachable op, breaking ties toward the smallest displacement.
//!
//! # Implementation: an event-driven core over flat memory
//!
//! The scheduler is the hot path of every sweep campaign, so its data
//! layout and control flow are tuned for the steady state:
//!
//! * [`OpGrid`] stores the op lists in **CSR form** — one contiguous
//!   `u32` time buffer plus per-column offsets — instead of a
//!   `Vec<Vec<u32>>`, so a grid is two allocations (reused across tiles
//!   through [`SchedScratch`]) and column heads are plain indices into
//!   one array.
//! * Each slot's **tap table** — the `signed_offsets` cross-product of
//!   the window, clipped to the grid, in priority order — is precomputed
//!   once per `(grid dims, window)` pair and cached in the scratch, so
//!   the per-cycle scan is a linear walk over `(column, displacement)`
//!   pairs with no offset arithmetic or bounds checks.
//! * Slots are **event-driven**: when a slot's scan finds no reachable
//!   work, the slot records the earliest time row any of its tap columns
//!   could offer (`wake_t`, the minimum head time over its taps) and
//!   goes dormant in a wake bucket for that row. Dormant slots are
//!   skipped entirely (an active-slot bitset) until the horizon
//!   `H + depth − 1` reaches their `wake_t`. This is sound because both
//!   column heads and the horizon move monotonically forward in time:
//!   while `horizon < wake_t`, no tap column can hold a reachable op
//!   (heads only advance, so the current minimum head time is at least
//!   the recorded `wake_t`). A woken slot simply rescans; if its op was
//!   consumed by another slot in the meantime it re-sleeps with a
//!   strictly later `wake_t`.
//!
//! The observable semantics — [`Schedule`] counters and the
//! [`Assignment`] stream — are **bit-identical** to the naive
//! rescan-everything policy, which is retained in [`reference`] and
//! checked by differential property tests.

use crate::config::Priority;
use crate::window::EffectiveWindow;

/// Sentinel for "no entry" in the intrusive wake lists.
const NONE: u32 = u32::MAX;

/// A grid of effectual operations in blocked coordinates.
///
/// Coordinates: `t ∈ 0..t_steps` (time), `lane ∈ 0..lanes`,
/// `row ∈ 0..rows` (A-side spatial), `col ∈ 0..cols` (B-side spatial).
/// Single-sparse architectures use a degenerate axis of extent 1.
///
/// Storage is CSR-style: `ops` holds every op's time index, sorted
/// ascending within each column, and `col_off[c]..col_off[c + 1]` is
/// column `c`'s slice. The column of `(lane, row, col)` is
/// `(lane * rows + row) * cols + col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpGrid {
    t_steps: usize,
    lanes: usize,
    rows: usize,
    cols: usize,
    /// Per-column start offsets into `ops`; length `columns + 1`.
    pub(crate) col_off: Vec<u32>,
    /// Concatenated per-column op time indices, each column sorted.
    pub(crate) ops: Vec<u32>,
    /// Ops per original time row, maintained by every builder so the
    /// scheduler seeds its row counters with one copy instead of
    /// re-scanning the whole op buffer per tile.
    pub(crate) t_counts: Vec<u32>,
}

impl Default for OpGrid {
    /// An empty degenerate grid, usable as reusable storage that a
    /// builder will overwrite (see [`crate::grid`]).
    fn default() -> Self {
        OpGrid {
            t_steps: 0,
            lanes: 0,
            rows: 0,
            cols: 0,
            col_off: vec![0],
            ops: Vec::new(),
            t_counts: Vec::new(),
        }
    }
}

impl OpGrid {
    /// Resets the dimensions and clears the CSR arrays, keeping their
    /// capacity. `col_off` comes back zero-filled at `columns + 1`
    /// entries so builders can count into `col_off[c]` directly (the
    /// exclusive prefix sum in [`Self::finish_counts`] then turns the
    /// counts into start offsets).
    pub(crate) fn reset_dims(&mut self, t_steps: usize, lanes: usize, rows: usize, cols: usize) {
        assert!(
            t_steps <= u32::MAX as usize,
            "op grid time axis ({t_steps} steps) exceeds u32 indexing; \
             split the schedule into smaller tiles"
        );
        let columns = lanes * rows * cols;
        assert!(
            columns <= (u32::MAX - 1) as usize,
            "op grid has {columns} columns, exceeding u32 indexing"
        );
        self.t_steps = t_steps;
        self.lanes = lanes;
        self.rows = rows;
        self.cols = cols;
        self.col_off.clear();
        self.col_off.resize(columns + 1, 0);
        self.ops.clear();
        self.t_counts.clear();
        self.t_counts.resize(t_steps, 0);
    }

    /// Turns per-column counts left in `col_off[c + 1]` into start
    /// offsets and sizes `ops` to the total; the builder then scatters
    /// with [`Self::push_counted`] and finishes with
    /// [`Self::finish_fill`].
    pub(crate) fn finish_counts(&mut self) {
        let mut total = 0u64;
        for off in &mut self.col_off {
            let count = *off;
            assert!(
                total <= u32::MAX as u64,
                "op grid holds more than u32::MAX operations; \
                 split the schedule into smaller tiles"
            );
            *off = total as u32;
            total += u64::from(count);
        }
        // The per-entry assert above only covers the *start* offset of
        // each column; the last column's count lands after the final
        // check, so without this the grand total could silently pass
        // u32::MAX and every packed head cursor would truncate.
        assert!(
            total <= u32::MAX as u64,
            "op grid holds {total} operations, more than u32::MAX; \
             split the schedule into smaller tiles"
        );
        self.ops.resize(total as usize, 0);
    }

    /// Scatters one op into column `c` during the fill pass, using
    /// `col_off[c]` as the running cursor (the classic CSR fill; offsets
    /// are restored by [`Self::finish_fill`]). The caller is responsible
    /// for having counted the op into `t_counts` (builders do it in
    /// their counting pass, one bulk update per span instead of per op).
    #[inline]
    pub(crate) fn push_counted(&mut self, c: usize, t: u32) {
        let at = self.col_off[c];
        self.ops[at as usize] = t;
        self.col_off[c] = at + 1;
    }

    /// Restores `col_off` after the fill pass shifted every cursor to
    /// its column's end.
    pub(crate) fn finish_fill(&mut self) {
        let columns = self.lanes * self.rows * self.cols;
        debug_assert_eq!(
            self.col_off[columns.saturating_sub(1)],
            self.col_off[columns]
        );
        for c in (1..=columns).rev() {
            self.col_off[c] = self.col_off[c - 1];
        }
        self.col_off[0] = 0;
    }

    /// Builds the grid from a predicate over `(t, lane, row, col)`.
    pub fn from_fn<F>(t_steps: usize, lanes: usize, rows: usize, cols: usize, mut f: F) -> Self
    where
        F: FnMut(usize, usize, usize, usize) -> bool,
    {
        // Single pass through the (possibly expensive, FnMut) predicate,
        // buffering (column, t) pairs, then a counting scatter into CSR.
        // Word-level mask builders (crate::grid) skip this path.
        let mut grid = OpGrid::default();
        grid.reset_dims(t_steps, lanes, rows, cols);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for t in 0..t_steps {
            for lane in 0..lanes {
                for row in 0..rows {
                    for col in 0..cols {
                        if f(t, lane, row, col) {
                            let c = (lane * rows + row) * cols + col;
                            pairs.push((c as u32, t as u32));
                            grid.col_off[c] += 1;
                            grid.t_counts[t] += 1;
                        }
                    }
                }
            }
        }
        grid.finish_counts();
        // t-major iteration keeps each column's pairs already sorted.
        for &(c, t) in &pairs {
            grid.push_counted(c as usize, t);
        }
        grid.finish_fill();
        grid
    }

    /// Builds the grid from an explicit op list of `(t, lane, row, col)`
    /// coordinates (used for scheduling over a *compressed* stream).
    pub fn from_ops(
        t_steps: usize,
        lanes: usize,
        rows: usize,
        cols: usize,
        ops: impl IntoIterator<Item = (usize, usize, usize, usize)>,
    ) -> Self {
        let collected: Vec<(usize, usize, usize, usize)> = ops.into_iter().collect();
        let mut grid = OpGrid::default();
        grid.rebuild_from_ops(t_steps, lanes, rows, cols, &collected);
        grid
    }

    /// Rebuilds this grid in place from an explicit op list, reusing the
    /// CSR allocations — the zero-alloc path for per-tile rebuilds (the
    /// dual-sparse stage-2 replay).
    pub fn rebuild_from_ops(
        &mut self,
        t_steps: usize,
        lanes: usize,
        rows: usize,
        cols: usize,
        ops: &[(usize, usize, usize, usize)],
    ) {
        self.reset_dims(t_steps, lanes, rows, cols);
        for &(t, lane, row, col) in ops {
            debug_assert!(t < t_steps && lane < lanes && row < rows && col < cols);
            self.col_off[(lane * rows + row) * cols + col] += 1;
            self.t_counts[t] += 1;
        }
        self.finish_counts();
        for &(t, lane, row, col) in ops {
            self.push_counted((lane * rows + row) * cols + col, t as u32);
        }
        self.finish_fill();
        let columns = lanes * rows * cols;
        for c in 0..columns {
            let (lo, hi) = (self.col_off[c] as usize, self.col_off[c + 1] as usize);
            self.ops[lo..hi].sort_unstable();
        }
    }

    /// Number of time steps of the dense schedule.
    pub fn t_steps(&self) -> usize {
        self.t_steps
    }

    /// Total number of effectual operations.
    pub fn total_ops(&self) -> usize {
        self.ops.len()
    }

    /// Largest per-slot op count — a lower bound on the makespan.
    pub fn max_column_ops(&self) -> usize {
        self.col_off
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    #[inline]
    fn column(&self, lane: usize, row: usize, col: usize) -> usize {
        (lane * self.rows + row) * self.cols + col
    }

    /// Column `c`'s sorted op times.
    #[inline]
    fn col(&self, c: usize) -> &[u32] {
        &self.ops[self.col_off[c] as usize..self.col_off[c + 1] as usize]
    }
}

/// Outcome of scheduling one [`OpGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Makespan in cycles.
    pub cycles: u64,
    /// Ops executed (equals the grid's total by construction).
    pub executed: u64,
    /// Ops executed by a slot other than their own (borrow events).
    pub borrowed: u64,
    /// Cycles in which at least one slot idled while work remained
    /// outside its window — the under-utilization the paper's Figure 2
    /// mechanisms exist to reduce.
    pub starved_cycles: u64,
}

impl Schedule {
    /// An empty schedule (zero-op grid).
    pub fn empty() -> Self {
        Schedule {
            cycles: 0,
            executed: 0,
            borrowed: 0,
            starved_cycles: 0,
        }
    }
}

/// Displacement taps for a dimension with borrowing distance `d`:
/// exactly `1 + d` taps, alternating `0, -1, +1, -2, +2, …` (smallest
/// magnitude first). This matches both Figure 2 of the paper (whose
/// `d2`/`d3` borrow arrows move in the negative direction for `d = 1`)
/// and Table II's mux fan-in accounting of `1 + d` sources per
/// dimension.
#[inline]
fn signed_offsets(d: usize) -> impl Iterator<Item = isize> {
    (0..=d as isize).map(|i| if i % 2 == 1 { -(i / 2 + 1) } else { i / 2 })
}

/// Applies a signed offset within `[0, len)`, returning `None` when the
/// source falls outside the grid.
#[inline]
fn offset(base: usize, delta: isize, len: usize) -> Option<usize> {
    let v = base as isize + delta;
    (v >= 0 && (v as usize) < len).then_some(v as usize)
}

/// One op's placement in the compacted schedule: the op originally at
/// `(t, src)` executed at compacted cycle `cycle` on slot `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Original time row of the op.
    pub t: u32,
    /// Original `(lane, row, col)` of the op.
    pub src: (usize, usize, usize),
    /// Compacted cycle (0-based) at which it executed. `u64` so that
    /// multi-billion-cycle grids cannot silently wrap (the time axis is
    /// `u32`-bounded, but the makespan accumulator is not).
    pub cycle: u64,
    /// Slot `(lane, row, col)` that executed it.
    pub slot: (usize, usize, usize),
}

/// One slot's precomputed borrowing neighbourhood for a given grid shape
/// and window: the `signed_offsets` cross-product clipped to the grid,
/// in arbitration priority order.
#[derive(Debug, Clone, Default)]
struct TapTable {
    /// Cache key: `(lanes, rows, cols, lane reach, row reach, col reach)`
    /// — the time depth does not affect tap geometry.
    key: (usize, usize, usize, usize, usize, usize),
    /// Per-slot offsets into `col`/`dsum`; length `slots + 1`.
    off: Vec<u32>,
    /// Source column index of each tap.
    col: Vec<u32>,
    /// Total displacement `|Δlane| + |Δrow| + |Δcol|` of each tap.
    dsum: Vec<u32>,
}

impl TapTable {
    fn build(grid: &OpGrid, win: EffectiveWindow) -> Self {
        let slots = grid.lanes * grid.rows * grid.cols;
        let mut t = TapTable {
            key: tap_key(grid, win),
            off: Vec::with_capacity(slots + 1),
            col: Vec::new(),
            dsum: Vec::new(),
        };
        t.off.push(0);
        for lane in 0..grid.lanes {
            for row in 0..grid.rows {
                for col in 0..grid.cols {
                    for dl in signed_offsets(win.lane) {
                        let Some(sl) = offset(lane, dl, grid.lanes) else {
                            continue;
                        };
                        for dr in signed_offsets(win.rows) {
                            let Some(sr) = offset(row, dr, grid.rows) else {
                                continue;
                            };
                            for dc in signed_offsets(win.cols) {
                                let Some(sc) = offset(col, dc, grid.cols) else {
                                    continue;
                                };
                                t.col.push(grid.column(sl, sr, sc) as u32);
                                t.dsum.push(
                                    (dl.unsigned_abs() + dr.unsigned_abs() + dc.unsigned_abs())
                                        as u32,
                                );
                            }
                        }
                    }
                    let lo = *t.off.last().unwrap() as usize;
                    // Stable-sort the slot's run by displacement, keeping
                    // the Figure 2 enumeration order inside equal
                    // displacements. With the run in `(dsum, tap order)`
                    // order, the arbitration scan recovers the full
                    // `(t, dsum, tap order)` priority from head *times*
                    // alone: a strict `<` keeps the earliest-sorted tap
                    // among equal times, which is exactly the dsum /
                    // enumeration tie-break.
                    let mut order: Vec<usize> = (lo..t.col.len()).collect();
                    order.sort_by_key(|&i| t.dsum[i]);
                    let col_run: Vec<u32> = order.iter().map(|&i| t.col[i]).collect();
                    let dsum_run: Vec<u32> = order.iter().map(|&i| t.dsum[i]).collect();
                    t.col[lo..].copy_from_slice(&col_run);
                    t.dsum[lo..].copy_from_slice(&dsum_run);
                    t.off.push(u32::try_from(t.col.len()).expect(
                        "tap table exceeds u32 indexing; shrink the \
                         borrowing window or split the grid",
                    ));
                }
            }
        }
        t
    }
}

fn tap_key(grid: &OpGrid, win: EffectiveWindow) -> (usize, usize, usize, usize, usize, usize) {
    (
        grid.lanes, grid.rows, grid.cols, win.lane, win.rows, win.cols,
    )
}

/// How many tap tables a scratch keeps before recycling slots. The dual
/// pipeline alternates between the stage-1 and stage-2 shapes every
/// tile pair, so two entries are the working set; four leaves headroom
/// for mixed campaigns without letting the cache grow. Multi-window
/// calls raise the effective capacity to their distinct reach count via
/// [`SchedScratch::reserve_taps`], so an architecture family sweeping
/// many reaches over one grid never thrashes the cache.
const TAP_CACHE: usize = 4;

/// Reusable scheduler state: column heads, per-row op counts, cached tap
/// tables and the dormant-slot frontier machinery.
///
/// One scratch serves any sequence of grids and windows; every buffer is
/// sized on entry and keeps its capacity, so steady-state tile
/// simulation allocates nothing. A scratch is cheap to create but worth
/// keeping per worker thread (see `griffin_sweep`'s executor).
#[derive(Debug, Default)]
pub struct SchedScratch {
    /// Time at each column's head op (`u32::MAX` when exhausted). Kept
    /// as a dense `u32` array separate from the cursors: the arbitration
    /// scan only needs times, and the split packs twice as many column
    /// heads per cache line.
    head_t: Vec<u32>,
    /// Absolute index of each column's next unconsumed op in
    /// `OpGrid::ops`; only touched when a head actually pops.
    head_cursor: Vec<u32>,
    /// Remaining op count per original time row; row `H` advances when
    /// its count reaches zero.
    row_remaining: Vec<u32>,
    /// Cached tap tables, recycled round-robin.
    taps: Vec<TapTable>,
    next_tap: usize,
    /// Capacity floor for the tap cache, raised by multi-window calls
    /// whose distinct reach count exceeds [`TAP_CACHE`] (never shrinks;
    /// bounded by the largest window family the scratch has seen).
    tap_cap: usize,
    /// Bitset of active (non-dormant) slots.
    active: Vec<u64>,
    /// Bordered head-time plane for the 2-D stencil fast path: the
    /// `(lane, spatial)` head times surrounded by a sentinel ring of
    /// `NONE` wide enough for the window's largest displacement, so tap
    /// reads never need clipping (border taps read `NONE` and lose every
    /// arbitration, exactly like a clipped-away tap).
    head_b: Vec<u32>,
    /// Bordered index of each flat slot (stencil path).
    bb_of: Vec<u32>,
    /// Flat column of each bordered index (`NONE` on the ring).
    flat_of: Vec<u32>,
    /// Signed bordered-index displacement of each stencil tap, in
    /// `(dsum, enumeration)` priority order.
    deltas: Vec<i32>,
    /// Total displacement of each stencil tap.
    delta_dsum: Vec<u32>,
    /// Intrusive singly-linked wake buckets: `wake_head[t]` is the first
    /// dormant slot waiting for the horizon to reach `t`.
    wake_head: Vec<u32>,
    /// Next pointer per slot for the wake bucket lists.
    wake_next: Vec<u32>,
}

impl SchedScratch {
    /// Creates an empty scratch; buffers are sized lazily per grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached tap table for `(grid, win)`, building it on
    /// first use. Index-based so the caller can split borrows.
    fn tap_index(&mut self, grid: &OpGrid, win: EffectiveWindow) -> usize {
        let key = tap_key(grid, win);
        if let Some(i) = self.taps.iter().position(|t| t.key == key) {
            return i;
        }
        let cap = self.tap_cap.max(TAP_CACHE);
        let table = TapTable::build(grid, win);
        if self.taps.len() < cap {
            self.taps.push(table);
            self.taps.len() - 1
        } else {
            let i = self.next_tap;
            self.next_tap = (self.next_tap + 1) % cap;
            self.taps[i] = table;
            i
        }
    }

    /// Raises the tap-cache capacity floor so a multi-window call can
    /// keep every distinct reach of its family resident at once.
    fn reserve_taps(&mut self, n: usize) {
        self.tap_cap = self.tap_cap.max(n);
    }
}

/// Schedules the grid under the given window and priority policy.
///
/// Dense inputs take exactly `t_steps` cycles; an empty grid takes zero.
/// The makespan is always at least `max_column_ops` (one op per slot per
/// cycle) and at most `t_steps` (the dense schedule is always feasible).
///
/// Allocates fresh scheduler state; hot loops should hold a
/// [`SchedScratch`] and call [`schedule_with`] instead.
pub fn schedule(grid: &OpGrid, win: EffectiveWindow, priority: Priority) -> Schedule {
    schedule_with(grid, win, priority, &mut SchedScratch::new())
}

/// Like [`schedule`], additionally returning where every op executed —
/// the compacted stream layout that B preprocessing produces (§IV-A
/// step 1).
pub fn schedule_assign(
    grid: &OpGrid,
    win: EffectiveWindow,
    priority: Priority,
) -> (Schedule, Vec<Assignment>) {
    let mut assigns = Vec::with_capacity(grid.total_ops());
    let s = schedule_assign_with(grid, win, priority, &mut SchedScratch::new(), &mut assigns);
    (s, assigns)
}

/// [`schedule`] with caller-provided scratch: zero allocations once the
/// scratch buffers have grown to the campaign's largest grid.
pub fn schedule_with(
    grid: &OpGrid,
    win: EffectiveWindow,
    priority: Priority,
    scratch: &mut SchedScratch,
) -> Schedule {
    run_event::<false, _>(grid, win, priority, scratch, &mut NoSink).0
}

/// [`schedule_assign`] with caller-provided scratch and output buffer.
/// `out` is cleared first; reusing it across tiles avoids the per-tile
/// assignment allocation.
pub fn schedule_assign_with(
    grid: &OpGrid,
    win: EffectiveWindow,
    priority: Priority,
    scratch: &mut SchedScratch,
    out: &mut Vec<Assignment>,
) -> Schedule {
    out.clear();
    run_event::<false, _>(grid, win, priority, scratch, out).0
}

/// How [`schedule_multi`] served each of its K windows: every window is
/// either *scheduled* (a full event-core pass over the grid) or
/// *replayed* (proven bit-identical to an already-scheduled deeper
/// window on the same reach, and copied without running).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MultiShare {
    /// Windows that executed a full event-core pass.
    pub scheduled: usize,
    /// Windows whose schedule was copied from a deeper same-reach run.
    pub replayed: usize,
}

impl MultiShare {
    /// Accumulates another call's counters.
    pub fn absorb(&mut self, other: MultiShare) {
        self.scheduled += other.scheduled;
        self.replayed += other.replayed;
    }
}

/// Schedules one grid under K windows in a single call, writing
/// `out[i]` = the schedule of `wins[i]`. Every result is **bitwise**
/// identical to an independent [`schedule_with`] call (pinned by
/// differential property tests); the point of the entry is to share
/// work across the family:
///
/// * Windows are processed grouped by reach `(lane, rows, cols)`, so
///   each distinct reach builds its dsum-sorted tap table exactly once
///   per call — and the scratch's tap cache is widened to the family's
///   reach count ([`SchedScratch::reserve_taps`]), so repeated calls
///   (one per tile of a campaign) build **no** tables at all. Under the
///   per-architecture sweep order this entry replaces, every call
///   cycled more reaches than the cache holds and rebuilt its table
///   every time.
/// * Within a reach group, windows run deepest-first and each run
///   tracks its maximum *executed lag* — the largest `t − H` (op time
///   minus oldest unfinished row) over all pops. A window of depth `L`
///   makes exactly the ops with lag `≤ L − 1` visible, so when the
///   last run's max lag is below a shallower window's depth, the
///   shallower window provably arbitrates identically cycle-for-cycle:
///   every candidate the smaller horizon removes has `t` strictly above
///   the winning op's `t` and never wins, slots idle in the same
///   cycles, and the counters follow from the identical assignment
///   stream. Such windows are *replayed* — the deeper schedule is
///   copied — and the counts are reported in [`MultiShare`]. Saturated
///   grids (where some slot runs a full `depth − 1` ahead) simply fall
///   back to one pass per window.
pub fn schedule_multi(
    grid: &OpGrid,
    wins: &[EffectiveWindow],
    priority: Priority,
    scratch: &mut SchedScratch,
    out: &mut Vec<Schedule>,
) -> MultiShare {
    out.clear();
    out.resize(wins.len(), Schedule::empty());
    let mut order: Vec<u32> = (0..wins.len() as u32).collect();
    order.sort_by_key(|&i| {
        let w = &wins[i as usize];
        (w.lane, w.rows, w.cols, std::cmp::Reverse(w.depth))
    });
    // Widen the tap cache to this family's distinct (non-trivial) reach
    // count so the K windows cannot thrash it.
    let mut distinct = 0usize;
    let mut prev_reach = None;
    for &i in &order {
        let w = &wins[i as usize];
        let reach = (w.lane, w.rows, w.cols);
        if reach != (0, 0, 0) && Some(reach) != prev_reach {
            distinct += 1;
        }
        prev_reach = Some(reach);
    }
    scratch.reserve_taps(distinct);

    let mut share = MultiShare::default();
    // Reach, schedule and max executed lag of the last window that
    // actually ran — the comparison point for saturation sharing.
    let mut last: Option<((usize, usize, usize), Schedule, u32)> = None;
    // Lag tracking costs a few percent per pop, so it runs adaptively:
    // the deepest window of every reach group always tracks (this alone
    // guarantees duplicate and saturating-depth replays, since a run's
    // lag is at most `depth − 1`), and later group members track only
    // while replay keeps proving itself on this grid. On replay-hostile
    // data (iid sparsity never saturates) the group degrades to plain
    // untracked passes after the first window.
    let mut cur_reach: Option<(usize, usize, usize)> = None;
    let mut first_in_group = true;
    let mut group_replayed = false;
    for (pos, &i) in order.iter().enumerate() {
        let w = wins[i as usize];
        let reach = (w.lane, w.rows, w.cols);
        if cur_reach != Some(reach) {
            cur_reach = Some(reach);
            first_in_group = true;
            group_replayed = false;
        }
        if let Some((r, s, lag)) = last {
            if r == reach && w.depth as u64 > u64::from(lag) {
                out[i as usize] = s;
                share.replayed += 1;
                group_replayed = true;
                continue;
            }
        }
        let next_same_reach = order.get(pos + 1).is_some_and(|&j| {
            let n = wins[j as usize];
            (n.lane, n.rows, n.cols) == reach
        });
        let track = next_same_reach && (first_in_group || group_replayed);
        if track {
            let (s, lag) = run_event::<true, _>(grid, w, priority, scratch, &mut NoSink);
            out[i as usize] = s;
            last = Some((reach, s, lag));
        } else {
            let (s, _) = run_event::<false, _>(grid, w, priority, scratch, &mut NoSink);
            out[i as usize] = s;
            last = None;
        }
        share.scheduled += 1;
        first_in_group = false;
    }
    share
}

/// Assignment consumer, monomorphized so the non-collecting scheduler
/// carries no per-op branch or source-coordinate arithmetic.
trait Sink {
    /// Whether pushes do anything (lets the compiler erase the call).
    const ACTIVE: bool;
    fn push(&mut self, a: Assignment);
}

/// Discards assignments ([`schedule`] / [`schedule_with`]).
struct NoSink;

impl Sink for NoSink {
    const ACTIVE: bool = false;
    #[inline(always)]
    fn push(&mut self, _: Assignment) {}
}

impl Sink for Vec<Assignment> {
    const ACTIVE: bool = true;
    #[inline(always)]
    fn push(&mut self, a: Assignment) {
        Vec::push(self, a);
    }
}

/// The event-driven core. `TRACK` additionally computes the maximum
/// *executed lag* — `max(t − H)` over every pop, where `H` is the
/// oldest unfinished row at that cycle — which [`schedule_multi`] uses
/// to prove shallower windows identical; with `TRACK = false` the lag
/// arithmetic compiles out and the returned lag is 0.
fn run_event<const TRACK: bool, S: Sink>(
    grid: &OpGrid,
    win: EffectiveWindow,
    priority: Priority,
    scratch: &mut SchedScratch,
    sink: &mut S,
) -> (Schedule, u32) {
    assert!(win.depth >= 1, "window depth must be at least 1");
    let total = grid.total_ops();
    if total == 0 {
        return (Schedule::empty(), 0);
    }
    let slots = grid.lanes * grid.rows * grid.cols;
    let row_cols = grid.rows * grid.cols;

    // With no lane or spatial reach every slot's neighbourhood is just
    // its own column — no tap table, no arbitration, and wake rows are
    // exact, so the specialized loop below visits a slot only when it
    // executes.
    let single_tap = win.lane == 0 && win.rows == 0 && win.cols == 0;

    // Grids with one degenerate unreached spatial axis (every A-side and
    // B-side production grid) take the 2-D stencil core: taps become a
    // fixed displacement list over a sentinel-bordered head plane, so
    // arbitration scans are branchless fixed-trip loops with no tap-table
    // indirection. Bit-identical to the general loop (and to
    // [`reference`]) — pinned by the differential tests.
    if !single_tap {
        let two_d = if grid.rows == 1 && win.rows == 0 {
            Some((grid.cols, win.cols))
        } else if grid.cols == 1 && win.cols == 0 {
            Some((grid.rows, win.rows))
        } else {
            None
        };
        if let Some((ext2, reach2)) = two_d {
            return run_event_stencil::<TRACK, S>(grid, win, priority, scratch, sink, ext2, reach2);
        }
    }

    // --- prepare scratch (resize-only; no allocation at steady state) ---
    let tap = if single_tap {
        usize::MAX
    } else {
        scratch.tap_index(grid, win)
    };
    scratch.head_t.clear();
    scratch.head_t.reserve(slots);
    scratch.head_cursor.clear();
    scratch.head_cursor.reserve(slots);
    for c in 0..slots {
        let (lo, hi) = (grid.col_off[c], grid.col_off[c + 1]);
        let t = if lo < hi { grid.ops[lo as usize] } else { NONE };
        scratch.head_t.push(t);
        scratch.head_cursor.push(lo);
    }
    scratch.row_remaining.clear();
    scratch.row_remaining.extend_from_slice(&grid.t_counts);
    let words = slots.div_ceil(64);
    scratch.active.clear();
    scratch.active.resize(words, !0u64);
    if !slots.is_multiple_of(64) {
        scratch.active[words - 1] = (1u64 << (slots % 64)) - 1;
    }
    scratch.wake_head.clear();
    scratch.wake_head.resize(grid.t_steps, NONE);
    scratch.wake_next.clear();
    scratch.wake_next.resize(slots, NONE);
    // Split borrows for the hot loop.
    let head_t = &mut scratch.head_t;
    let head_cursor = &mut scratch.head_cursor;
    let row_remaining = &mut scratch.row_remaining;
    let active = &mut scratch.active;
    let wake_head = &mut scratch.wake_head;
    let wake_next = &mut scratch.wake_next;

    let mut h = 0usize; // oldest unfinished time row
    while h < grid.t_steps && row_remaining[h] == 0 {
        h += 1;
    }

    let mut remaining = total;
    let mut dormant = 0usize;
    let mut cycles = 0u64;
    let mut borrowed = 0u64;
    let mut starved_cycles = 0u64;
    let mut prev_horizon = 0usize;
    let mut first_cycle = true;
    // Max executed lag (TRACK only). No pending op sits below the
    // oldest unfinished row, so `t - h` never underflows.
    let mut max_lag = 0u32;

    if single_tap {
        // Specialized no-reach loop: a slot executes its own head op
        // when it is inside the window and otherwise sleeps until the
        // horizon reaches it (an exact wake row — its own column is the
        // only place work can come from). Identical to the general
        // arbitration with a one-entry tap table, for both priorities.
        while remaining > 0 {
            cycles += 1;
            let horizon = (h + win.depth - 1).min(grid.t_steps - 1);
            let horizon32 = horizon as u32;
            if !first_cycle && horizon > prev_horizon {
                for wh in &mut wake_head[prev_horizon + 1..=horizon] {
                    let mut slot = *wh;
                    *wh = NONE;
                    while slot != NONE {
                        let s = slot as usize;
                        slot = wake_next[s];
                        active[s / 64] |= 1u64 << (s % 64);
                        dormant -= 1;
                    }
                }
            }
            first_cycle = false;
            prev_horizon = horizon;
            let mut idled = dormant > 0;

            for (w, aw) in active.iter_mut().enumerate() {
                let mut bits = *aw;
                let mut cleared = 0u64;
                while bits != 0 {
                    let slot = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let t = head_t[slot];
                    if t <= horizon32 {
                        let hp = head_cursor[slot] + 1;
                        let nt = if hp < grid.col_off[slot + 1] {
                            grid.ops[hp as usize]
                        } else {
                            NONE
                        };
                        head_t[slot] = nt;
                        head_cursor[slot] = hp;
                        row_remaining[t as usize] -= 1;
                        remaining -= 1;
                        if TRACK {
                            max_lag = max_lag.max(t - h as u32);
                        }
                        if S::ACTIVE {
                            let src = (
                                slot / row_cols,
                                slot % row_cols / grid.cols,
                                slot % grid.cols,
                            );
                            sink.push(Assignment {
                                t,
                                src,
                                cycle: cycles - 1,
                                slot: src,
                            });
                        }
                        if nt > horizon32 + 1 {
                            // Pre-sleep until the own column's next op
                            // enters the window. Ops exactly one row
                            // past the horizon stay active: on dense
                            // rows the horizon advances every cycle, and
                            // sleeping would just thrash the wake lists
                            // (dormancy is an optimization — skipping it
                            // never changes results, only who scans).
                            cleared |= 1u64 << (slot % 64);
                            dormant += 1;
                            if nt != NONE {
                                wake_next[slot] = wake_head[nt as usize];
                                wake_head[nt as usize] = slot as u32;
                            }
                        }
                    } else {
                        // Only reachable on the first cycle (slots start
                        // active); afterwards wakes are exact.
                        idled = true;
                        cleared |= 1u64 << (slot % 64);
                        dormant += 1;
                        if t != NONE {
                            wake_next[slot] = wake_head[t as usize];
                            wake_head[t as usize] = slot as u32;
                        }
                    }
                }
                *aw &= !cleared;
            }

            if idled && remaining > 0 {
                starved_cycles += 1;
            }
            while h < grid.t_steps && row_remaining[h] == 0 {
                h += 1;
            }
        }
        return (
            Schedule {
                cycles,
                executed: total as u64,
                borrowed: 0,
                starved_cycles,
            },
            max_lag,
        );
    }

    let (tap_off, tap_col, tap_dsum) = {
        let t = &scratch.taps[tap];
        (&t.off, &t.col, &t.dsum)
    };

    while remaining > 0 {
        cycles += 1;
        let horizon = (h + win.depth - 1).min(grid.t_steps - 1);
        let horizon32 = horizon as u32;

        // Wake dormant slots whose earliest reachable row entered the
        // window. The horizon is monotone, so each bucket drains once.
        if !first_cycle && horizon > prev_horizon {
            for wh in &mut wake_head[prev_horizon + 1..=horizon] {
                let mut slot = *wh;
                *wh = NONE;
                while slot != NONE {
                    let s = slot as usize;
                    slot = wake_next[s];
                    active[s / 64] |= 1u64 << (s % 64);
                    dormant -= 1;
                }
            }
        }
        first_cycle = false;
        prev_horizon = horizon;

        // Slots dormant at this point idle through the whole cycle; a
        // slot that pre-sleeps *after* executing below does not (it
        // only joins the idle set from the next cycle on).
        let mut idled = dormant > 0;

        for (w, aw) in active.iter_mut().enumerate() {
            let mut bits = *aw;
            let mut cleared = 0u64;
            while bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;

                // Own op first (Bit-Tactical priority), if within the
                // time window (`head_t` is `NONE` > horizon when the
                // column is exhausted).
                let own_t = head_t[slot];
                if priority == Priority::OwnFirst {
                    let t = own_t;
                    if t <= horizon32 {
                        // SAFETY: `slot < slots` from the active bitset,
                        // bounding the head arrays and `col_off`; the
                        // cursor stays within the column's CSR slice; `t`
                        // is an op time, so `t < t_steps` =
                        // `row_remaining.len()` (see the arbitration pop
                        // below).
                        let nt = unsafe {
                            let hp = *head_cursor.get_unchecked(slot) + 1;
                            let nt = if hp < *grid.col_off.get_unchecked(slot + 1) {
                                *grid.ops.get_unchecked(hp as usize)
                            } else {
                                NONE
                            };
                            *head_t.get_unchecked_mut(slot) = nt;
                            *head_cursor.get_unchecked_mut(slot) = hp;
                            *row_remaining.get_unchecked_mut(t as usize) -= 1;
                            nt
                        };
                        remaining -= 1;
                        if TRACK {
                            max_lag = max_lag.max(t - h as u32);
                        }
                        if S::ACTIVE {
                            let src = (
                                slot / row_cols,
                                slot % row_cols / grid.cols,
                                slot % grid.cols,
                            );
                            sink.push(Assignment {
                                t,
                                src,
                                cycle: cycles - 1,
                                slot: src,
                            });
                        }
                        // Pre-sleep: if no tap (own column included) can
                        // offer work at the current horizon, the next
                        // visit would fail — skip it. Sound because heads
                        // and the horizon are monotone; equivalent
                        // because a dormant slot idles exactly like a
                        // scan that finds nothing.
                        if nt > horizon32 {
                            // The exact minimum only matters when the
                            // slot actually sleeps; any in-window tap
                            // keeps it active, so bail on the first one.
                            let mut m = NONE;
                            for &tc in &tap_col[tap_off[slot] as usize..tap_off[slot + 1] as usize]
                            {
                                // SAFETY: tap columns are in-bounds for
                                // `head_t` by construction (see the
                                // arbitration scan below).
                                m = m.min(unsafe { *head_t.get_unchecked(tc as usize) });
                                if m <= horizon32 {
                                    break;
                                }
                            }
                            if m > horizon32 {
                                cleared |= 1u64 << (slot % 64);
                                dormant += 1;
                                if m != NONE {
                                    wake_next[slot] = wake_head[m as usize];
                                    wake_head[m as usize] = slot as u32;
                                }
                            }
                        }
                        continue;
                    }
                }

                // Arbitration scan over the precomputed tap table:
                // earliest time, then smallest displacement, ties broken
                // by tap order (which encodes the Figure 2 arbitration
                // priority) — one packed `t << 32 | dsum` key comparison
                // per tap. The scan pops the head of a ready queue the
                // tap table implicitly indexes by column: each packed
                // `heads[c]` key is the front of column `c`'s queue, so
                // the minimum over the neighbourhood is the next ready
                // candidate (exhausted columns pack as `NONE` and lose to
                // everything live) and a failed arbitration goes straight
                // to sleep on it instead of re-walking dormant taps.
                let lo = tap_off[slot] as usize;
                let hi = tap_off[slot + 1] as usize;
                let run = &tap_col[lo..hi];
                let n = run.len();
                // The run is in `(dsum, tap order)` order (see
                // `TapTable::build`), so a strict `<` on head times
                // alone resolves the whole `(t, dsum, tap order)`
                // arbitration priority; exhausted columns sit at `NONE`
                // and lose to everything live. Conditional moves keep
                // the random sparsity pattern out of the branch
                // predictor, with one certain-winner exit: no head can
                // sit below the oldest unfinished row `h`, so the first
                // tap exactly at `h` wins outright — on contended
                // windows (where the backlog lives at `h`) that fires
                // within the first few taps of almost every scan.
                debug_assert_eq!(tap_dsum[lo], 0, "own column must sort first");
                let h32 = h as u32;
                let mut bt = NONE;
                let mut best_i = 0usize;
                let mut i = 0;
                while i < n {
                    // SAFETY: `i < n` bounds the run access;
                    // `TapTable::build` only emits neighbour columns
                    // below `lanes * rows * cols`, and `prep` sizes
                    // `head_t` to exactly that (the table is cached
                    // keyed by (dims, window), so it always matches the
                    // grid the heads were built for).
                    let t = unsafe { *head_t.get_unchecked(*run.get_unchecked(i) as usize) };
                    if t == h32 {
                        bt = t;
                        best_i = i;
                        break;
                    }
                    let lt = t < bt;
                    bt = if lt { t } else { bt };
                    best_i = if lt { i } else { best_i };
                    i += 1;
                }

                if bt <= horizon32 {
                    let best_c = tap_col[lo + best_i] as usize;
                    let dsum = tap_dsum[lo + best_i];
                    // SAFETY: `best_c` is a tap column (in-bounds for the
                    // head arrays and `col_off`, see the scan above); the
                    // cursor stays within the column's CSR slice, whose
                    // end `col_off[best_c + 1]` bounds `ops`; `bt` is an
                    // op time, and every builder counts times into
                    // `t_counts` (len `t_steps`), so `bt < t_steps` =
                    // `row_remaining.len()`.
                    unsafe {
                        let hp = *head_cursor.get_unchecked(best_c) + 1;
                        let nt = if hp < *grid.col_off.get_unchecked(best_c + 1) {
                            *grid.ops.get_unchecked(hp as usize)
                        } else {
                            NONE
                        };
                        *head_t.get_unchecked_mut(best_c) = nt;
                        *head_cursor.get_unchecked_mut(best_c) = hp;
                        *row_remaining.get_unchecked_mut(bt as usize) -= 1;
                    }
                    remaining -= 1;
                    if TRACK {
                        max_lag = max_lag.max(bt - h32);
                    }
                    if dsum > 0 {
                        borrowed += 1;
                    }
                    if S::ACTIVE {
                        sink.push(Assignment {
                            t: bt,
                            src: (
                                best_c / row_cols,
                                best_c % row_cols / grid.cols,
                                best_c % grid.cols,
                            ),
                            cycle: cycles - 1,
                            slot: (
                                slot / row_cols,
                                slot % row_cols / grid.cols,
                                slot % grid.cols,
                            ),
                        });
                    }
                    // Pre-sleep after a borrow, mirroring the own-exec
                    // path: the popped column's head already advanced, so
                    // a bail-early walk over the (updated) neighbourhood
                    // decides dormancy. On contended windows the first
                    // tap is usually still in-window and the walk exits
                    // immediately.
                    let mut m = NONE;
                    for &tc in &tap_col[lo..hi] {
                        // SAFETY: tap columns are in-bounds for `head_t`
                        // by construction (see the arbitration scan).
                        m = m.min(unsafe { *head_t.get_unchecked(tc as usize) });
                        if m <= horizon32 {
                            break;
                        }
                    }
                    if m > horizon32 {
                        cleared |= 1u64 << (slot % 64);
                        dormant += 1;
                        if m != NONE {
                            wake_next[slot] = wake_head[m as usize];
                            wake_head[m as usize] = slot as u32;
                        }
                    }
                } else {
                    // Nothing reachable: this slot idles, and goes
                    // dormant until the horizon reaches the earliest tap
                    // head (`bt` — the minimum key's high word *is* the
                    // earliest head time; it stays `NONE` when the whole
                    // neighbourhood is exhausted and the slot never
                    // wakes again).
                    idled = true;
                    cleared |= 1u64 << (slot % 64);
                    dormant += 1;
                    if bt != NONE {
                        // SAFETY: a non-NONE `bt` is an op time, and op
                        // times are `< t_steps` (= `wake_head.len()`) by
                        // builder construction; `slot < slots` from the
                        // active bitset.
                        unsafe {
                            *wake_next.get_unchecked_mut(slot) =
                                *wake_head.get_unchecked(bt as usize);
                            *wake_head.get_unchecked_mut(bt as usize) = slot as u32;
                        }
                    }
                }
            }
            *aw &= !cleared;
        }

        // A starved cycle is one where some slot idled while work
        // remained outside its window.
        if idled && remaining > 0 {
            starved_cycles += 1;
        }
        while h < grid.t_steps && row_remaining[h] == 0 {
            h += 1;
        }
    }

    (
        Schedule {
            cycles,
            executed: total as u64,
            borrowed,
            starved_cycles,
        },
        max_lag,
    )
}

/// The 2-D stencil specialization of [`run_event`]: grids whose third
/// axis is degenerate (extent 1 with zero reach) — every A-side
/// `(lane, row)` and B-side `(lane, col)` production grid — arbitrate
/// over one fixed displacement list applied to a sentinel-bordered head
/// plane instead of per-slot tap-table runs.
///
/// Monomorphizes the hot loop over the tap count: the window families
/// the sweeps explore produce tiny displacement lists (2–9 taps), and a
/// compile-time trip count turns every arbitration scan and dormancy
/// walk into a fully unrolled branchless min-chain. `W = 0` is the
/// runtime-length fallback for wider windows.
fn run_event_stencil<const TRACK: bool, S: Sink>(
    grid: &OpGrid,
    win: EffectiveWindow,
    priority: Priority,
    scratch: &mut SchedScratch,
    sink: &mut S,
    ext2: usize,
    reach2: usize,
) -> (Schedule, u32) {
    // Displacement list in `(dsum, enumeration)` priority order — the
    // same order `TapTable::build` gives interior slots (border reads
    // stand in for edge clipping).
    let pad2 = reach2.div_ceil(2);
    let ext2_p = ext2 + 2 * pad2;
    scratch.deltas.clear();
    scratch.delta_dsum.clear();
    for dl in signed_offsets(win.lane) {
        for d2 in signed_offsets(reach2) {
            scratch.deltas.push((dl * ext2_p as isize + d2) as i32);
            scratch
                .delta_dsum
                .push((dl.unsigned_abs() + d2.unsigned_abs()) as u32);
        }
    }
    // Stable insertion sort by dsum (the list is at most a few dozen
    // entries), keeping the enumeration order inside equal displacements.
    for i in 1..scratch.deltas.len() {
        let mut j = i;
        while j > 0 && scratch.delta_dsum[j - 1] > scratch.delta_dsum[j] {
            scratch.delta_dsum.swap(j - 1, j);
            scratch.deltas.swap(j - 1, j);
            j -= 1;
        }
    }
    match scratch.deltas.len() {
        2 => run_event_stencil_w::<TRACK, 2, S>(grid, win, priority, scratch, sink, ext2, reach2),
        3 => run_event_stencil_w::<TRACK, 3, S>(grid, win, priority, scratch, sink, ext2, reach2),
        4 => run_event_stencil_w::<TRACK, 4, S>(grid, win, priority, scratch, sink, ext2, reach2),
        6 => run_event_stencil_w::<TRACK, 6, S>(grid, win, priority, scratch, sink, ext2, reach2),
        9 => run_event_stencil_w::<TRACK, 9, S>(grid, win, priority, scratch, sink, ext2, reach2),
        _ => run_event_stencil_w::<TRACK, 0, S>(grid, win, priority, scratch, sink, ext2, reach2),
    }
}

/// The stencil event loop proper, monomorphized over the tap count `W`
/// (`0` = read the length at runtime). See [`run_event_stencil`].
///
/// The differences from the general loop are mechanical, not semantic:
///
/// * Out-of-grid taps read the `NONE` border and lose every comparison,
///   exactly like a tap the table builder clipped away — so every slot
///   shares one displacement list and the arbitration scan is a
///   fixed-trip branchless min-chain with no per-slot bounds, no
///   tap-table indirection and no data-dependent early exits.
/// * The scan tracks the second-smallest head alongside the minimum, so
///   the post-borrow dormancy check becomes `min(second, popped
///   column's next head)` — the only head a pop moves is the popped
///   column's — instead of re-walking the neighbourhood.
///
/// Results are **bit-identical** to the general loop and to
/// [`reference`], pinned by the differential tests.
fn run_event_stencil_w<const TRACK: bool, const W: usize, S: Sink>(
    grid: &OpGrid,
    win: EffectiveWindow,
    priority: Priority,
    scratch: &mut SchedScratch,
    sink: &mut S,
    ext2: usize,
    reach2: usize,
) -> (Schedule, u32) {
    let total = grid.total_ops();
    let slots = grid.lanes * grid.rows * grid.cols;
    let row_cols = grid.rows * grid.cols;
    let ext1 = grid.lanes;
    let pad1 = win.lane.div_ceil(2);
    let pad2 = reach2.div_ceil(2);
    let ext2_p = ext2 + 2 * pad2;
    let ext1_p = ext1 + 2 * pad1;
    let plane = ext1_p * ext2_p;
    debug_assert!(W == 0 || scratch.deltas.len() == W);
    let n_taps = if W == 0 { scratch.deltas.len() } else { W };

    // --- prepare scratch (resize-only; no allocation at steady state) ---
    scratch.bb_of.clear();
    scratch.bb_of.reserve(slots);
    scratch.flat_of.clear();
    scratch.flat_of.resize(plane, NONE);
    scratch.head_b.clear();
    scratch.head_b.resize(plane, NONE);
    scratch.head_cursor.clear();
    scratch.head_cursor.reserve(slots);
    for l in 0..ext1 {
        for x in 0..ext2 {
            let c = l * ext2 + x;
            let bb = (l + pad1) * ext2_p + (x + pad2);
            scratch.bb_of.push(bb as u32);
            scratch.flat_of[bb] = c as u32;
            let (lo, hi) = (grid.col_off[c], grid.col_off[c + 1]);
            scratch.head_b[bb] = if lo < hi { grid.ops[lo as usize] } else { NONE };
            scratch.head_cursor.push(lo);
        }
    }
    scratch.row_remaining.clear();
    scratch.row_remaining.extend_from_slice(&grid.t_counts);
    let words = slots.div_ceil(64);
    scratch.active.clear();
    scratch.active.resize(words, !0u64);
    if !slots.is_multiple_of(64) {
        scratch.active[words - 1] = (1u64 << (slots % 64)) - 1;
    }
    scratch.wake_head.clear();
    scratch.wake_head.resize(grid.t_steps, NONE);
    scratch.wake_next.clear();
    scratch.wake_next.resize(slots, NONE);

    // Split borrows for the hot loop.
    let SchedScratch {
        head_b,
        head_cursor,
        row_remaining,
        active,
        wake_head,
        wake_next,
        bb_of,
        flat_of,
        deltas,
        delta_dsum,
        ..
    } = scratch;
    let deltas = &deltas[..];

    let mut h = 0usize; // oldest unfinished time row
    while h < grid.t_steps && row_remaining[h] == 0 {
        h += 1;
    }

    let mut remaining = total;
    let mut dormant = 0usize;
    let mut cycles = 0u64;
    let mut borrowed = 0u64;
    let mut starved_cycles = 0u64;
    let mut prev_horizon = 0usize;
    let mut first_cycle = true;
    let mut max_lag = 0u32;

    while remaining > 0 {
        cycles += 1;
        let horizon = (h + win.depth - 1).min(grid.t_steps - 1);
        let horizon32 = horizon as u32;

        // Wake dormant slots whose earliest reachable row entered the
        // window. The horizon is monotone, so each bucket drains once.
        if !first_cycle && horizon > prev_horizon {
            for wh in &mut wake_head[prev_horizon + 1..=horizon] {
                let mut slot = *wh;
                *wh = NONE;
                while slot != NONE {
                    let s = slot as usize;
                    slot = wake_next[s];
                    active[s / 64] |= 1u64 << (s % 64);
                    dormant -= 1;
                }
            }
        }
        first_cycle = false;
        prev_horizon = horizon;

        let mut idled = dormant > 0;

        for (wd, aw) in active.iter_mut().enumerate() {
            let mut bits = *aw;
            let mut cleared = 0u64;
            while bits != 0 {
                let slot = wd * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // SAFETY: `slot < slots` from the active bitset, and
                // `bb_of` holds one in-plane interior index per slot.
                let bb = unsafe { *bb_of.get_unchecked(slot) } as usize;
                let own_t = unsafe { *head_b.get_unchecked(bb) };

                // Own op first (Bit-Tactical priority), if within the
                // time window.
                if priority == Priority::OwnFirst && own_t <= horizon32 {
                    let t = own_t;
                    // SAFETY: `slot < slots` bounds `head_cursor` and
                    // `col_off`; the cursor stays within the column's CSR
                    // slice; `t` is an op time, so `t < t_steps` =
                    // `row_remaining.len()`.
                    let nt = unsafe {
                        let hp = *head_cursor.get_unchecked(slot) + 1;
                        let nt = if hp < *grid.col_off.get_unchecked(slot + 1) {
                            *grid.ops.get_unchecked(hp as usize)
                        } else {
                            NONE
                        };
                        *head_b.get_unchecked_mut(bb) = nt;
                        *head_cursor.get_unchecked_mut(slot) = hp;
                        *row_remaining.get_unchecked_mut(t as usize) -= 1;
                        nt
                    };
                    remaining -= 1;
                    if TRACK {
                        max_lag = max_lag.max(t - h as u32);
                    }
                    if S::ACTIVE {
                        let src = (
                            slot / row_cols,
                            slot % row_cols / grid.cols,
                            slot % grid.cols,
                        );
                        sink.push(Assignment {
                            t,
                            src,
                            cycle: cycles - 1,
                            slot: src,
                        });
                    }
                    // Pre-sleep on an exhausted window, mirroring the
                    // general loop: cheap neighbourhood min over the
                    // updated heads (unrolled for const `W`).
                    if nt > horizon32 {
                        let mut m = NONE;
                        for i in 0..n_taps {
                            // SAFETY: `i < n_taps = deltas.len()`; `bb`
                            // is interior and every delta stays inside
                            // the sentinel border by pad construction.
                            let t = unsafe {
                                *head_b.get_unchecked(
                                    (bb as isize + *deltas.get_unchecked(i) as isize) as usize,
                                )
                            };
                            m = m.min(t);
                        }
                        if m > horizon32 {
                            cleared |= 1u64 << (slot % 64);
                            dormant += 1;
                            if m != NONE {
                                wake_next[slot] = wake_head[m as usize];
                                wake_head[m as usize] = slot as u32;
                            }
                        }
                    }
                    continue;
                }

                // Branchless arbitration scan: strict `<` over head
                // times in `(dsum, enumeration)` order resolves the full
                // `(t, dsum, tap order)` priority (first minimum wins);
                // the second-smallest head rides along for the
                // post-borrow dormancy check.
                let mut bt = NONE;
                let mut m2 = NONE;
                let mut best_i = 0usize;
                for i in 0..n_taps {
                    // SAFETY: `i < n_taps = deltas.len()`; `bb` is
                    // interior; deltas stay inside the sentinel border
                    // by pad construction.
                    let t = unsafe {
                        *head_b.get_unchecked(
                            (bb as isize + *deltas.get_unchecked(i) as isize) as usize,
                        )
                    };
                    let lt = t < bt;
                    let demoted = if lt { bt } else { t };
                    m2 = m2.min(demoted);
                    bt = if lt { t } else { bt };
                    best_i = if lt { i } else { best_i };
                }

                if bt <= horizon32 {
                    let pb = (bb as isize + deltas[best_i] as isize) as usize;
                    // SAFETY: the winning head is a live op time, so `pb`
                    // is interior (border entries are `NONE` and lose to
                    // every live head); `flat_of` maps interior entries
                    // to their flat column.
                    let best_c = unsafe { *flat_of.get_unchecked(pb) } as usize;
                    let dsum = delta_dsum[best_i];
                    // SAFETY: `best_c < slots` (see above); the cursor
                    // stays within the column's CSR slice; `bt` is an op
                    // time, so `bt < t_steps` = `row_remaining.len()`.
                    let nt = unsafe {
                        let hp = *head_cursor.get_unchecked(best_c) + 1;
                        let nt = if hp < *grid.col_off.get_unchecked(best_c + 1) {
                            *grid.ops.get_unchecked(hp as usize)
                        } else {
                            NONE
                        };
                        *head_b.get_unchecked_mut(pb) = nt;
                        *head_cursor.get_unchecked_mut(best_c) = hp;
                        *row_remaining.get_unchecked_mut(bt as usize) -= 1;
                        nt
                    };
                    remaining -= 1;
                    if TRACK {
                        max_lag = max_lag.max(bt - h as u32);
                    }
                    if dsum > 0 {
                        borrowed += 1;
                    }
                    if S::ACTIVE {
                        sink.push(Assignment {
                            t: bt,
                            src: (
                                best_c / row_cols,
                                best_c % row_cols / grid.cols,
                                best_c % grid.cols,
                            ),
                            cycle: cycles - 1,
                            slot: (
                                slot / row_cols,
                                slot % row_cols / grid.cols,
                                slot % grid.cols,
                            ),
                        });
                    }
                    // Post-borrow dormancy: the pop moved exactly one
                    // head (the popped column's), so the fresh
                    // neighbourhood minimum is `min(second-best, its
                    // next head)` — no re-walk.
                    let m = m2.min(nt);
                    if m > horizon32 {
                        cleared |= 1u64 << (slot % 64);
                        dormant += 1;
                        if m != NONE {
                            wake_next[slot] = wake_head[m as usize];
                            wake_head[m as usize] = slot as u32;
                        }
                    }
                } else {
                    // Nothing reachable: idle, then sleep until the
                    // horizon reaches the earliest tap head (`bt` is the
                    // exact full minimum — the scan has no early exit).
                    idled = true;
                    cleared |= 1u64 << (slot % 64);
                    dormant += 1;
                    if bt != NONE {
                        // SAFETY: a non-NONE `bt` is an op time, and op
                        // times are `< t_steps` (= `wake_head.len()`) by
                        // builder construction; `slot < slots` from the
                        // active bitset.
                        unsafe {
                            *wake_next.get_unchecked_mut(slot) =
                                *wake_head.get_unchecked(bt as usize);
                            *wake_head.get_unchecked_mut(bt as usize) = slot as u32;
                        }
                    }
                }
            }
            *aw &= !cleared;
        }

        if idled && remaining > 0 {
            starved_cycles += 1;
        }
        while h < grid.t_steps && row_remaining[h] == 0 {
            h += 1;
        }
    }

    (
        Schedule {
            cycles,
            executed: total as u64,
            borrowed,
            starved_cycles,
        },
        max_lag,
    )
}

/// The naive rescan-everything scheduler, retained verbatim as the
/// semantic reference for the event-driven core.
///
/// Every cycle it re-walks each slot's full borrowing cross-product,
/// exactly as §III describes the arbitration. It is the ground truth
/// for the differential property tests; production paths use the
/// event-driven [`schedule`]/[`schedule_with`] family, which must
/// produce bit-identical [`Schedule`]s and [`Assignment`] streams.
pub mod reference {
    use super::{offset, signed_offsets, Assignment, OpGrid, Schedule};
    use crate::config::Priority;
    use crate::window::EffectiveWindow;

    /// Reference counterpart of [`super::schedule`].
    pub fn schedule(grid: &OpGrid, win: EffectiveWindow, priority: Priority) -> Schedule {
        run(grid, win, priority, None)
    }

    /// Reference counterpart of [`super::schedule_assign`].
    pub fn schedule_assign(
        grid: &OpGrid,
        win: EffectiveWindow,
        priority: Priority,
    ) -> (Schedule, Vec<Assignment>) {
        let mut assigns = Vec::with_capacity(grid.total_ops());
        let s = run(grid, win, priority, Some(&mut assigns));
        (s, assigns)
    }

    fn run(
        grid: &OpGrid,
        win: EffectiveWindow,
        priority: Priority,
        mut collect: Option<&mut Vec<Assignment>>,
    ) -> Schedule {
        assert!(win.depth >= 1, "window depth must be at least 1");
        if grid.total_ops() == 0 {
            return Schedule::empty();
        }

        let columns = grid.lanes * grid.rows * grid.cols;
        let mut head = vec![0usize; columns];
        let mut row_remaining = vec![0u32; grid.t_steps];
        for &t in &grid.ops {
            row_remaining[t as usize] += 1;
        }

        let mut h = 0usize; // oldest unfinished time row
        while h < grid.t_steps && row_remaining[h] == 0 {
            h += 1;
        }

        let mut remaining = grid.total_ops();
        let mut cycles = 0u64;
        let mut borrowed = 0u64;
        let mut starved_cycles = 0u64;

        while remaining > 0 {
            cycles += 1;
            let horizon = (h + win.depth - 1).min(grid.t_steps - 1) as u32;
            let mut starved = false;

            for lane in 0..grid.lanes {
                for row in 0..grid.rows {
                    for col in 0..grid.cols {
                        // Own op first (Bit-Tactical priority), if within
                        // the time window.
                        let own = grid.column(lane, row, col);
                        let own_front = grid.col(own).get(head[own]).copied();
                        if priority == Priority::OwnFirst {
                            if let Some(t) = own_front {
                                if t <= horizon {
                                    head[own] += 1;
                                    row_remaining[t as usize] -= 1;
                                    remaining -= 1;
                                    if let Some(out) = collect.as_deref_mut() {
                                        out.push(Assignment {
                                            t,
                                            src: (lane, row, col),
                                            cycle: cycles - 1,
                                            slot: (lane, row, col),
                                        });
                                    }
                                    continue;
                                }
                            }
                        }

                        // Scan the borrowing window for the best
                        // candidate: earliest time, then smallest
                        // displacement. Spatial and lane displacements
                        // are bidirectional (distance semantics,
                        // Figure 2); time is forward-only.
                        let mut best: Option<(u32, usize, usize)> = None;
                        'scan: for dl in signed_offsets(win.lane) {
                            let Some(sl) = offset(lane, dl, grid.lanes) else {
                                continue;
                            };
                            for dr in signed_offsets(win.rows) {
                                let Some(sr) = offset(row, dr, grid.rows) else {
                                    continue;
                                };
                                for dc in signed_offsets(win.cols) {
                                    let Some(sc) = offset(col, dc, grid.cols) else {
                                        continue;
                                    };
                                    let c = grid.column(sl, sr, sc);
                                    if let Some(&t) = grid.col(c).get(head[c]) {
                                        if t > horizon {
                                            continue;
                                        }
                                        let dsum = dl.unsigned_abs()
                                            + dr.unsigned_abs()
                                            + dc.unsigned_abs();
                                        let cand = (t, dsum, c);
                                        if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                                            best = Some(cand);
                                            if t == h as u32 && dsum == 0 {
                                                break 'scan;
                                            }
                                        }
                                    }
                                }
                            }
                        }

                        match best {
                            Some((t, dsum, c)) => {
                                head[c] += 1;
                                row_remaining[t as usize] -= 1;
                                remaining -= 1;
                                if dsum > 0 {
                                    borrowed += 1;
                                }
                                if let Some(out) = collect.as_deref_mut() {
                                    let src_lane = c / (grid.rows * grid.cols);
                                    let rem = c % (grid.rows * grid.cols);
                                    out.push(Assignment {
                                        t,
                                        src: (src_lane, rem / grid.cols, rem % grid.cols),
                                        cycle: cycles - 1,
                                        slot: (lane, row, col),
                                    });
                                }
                            }
                            None => {
                                // This slot idles; if any work remains in
                                // the grid this is a starvation event.
                                starved = true;
                            }
                        }
                    }
                }
            }

            if starved && remaining > 0 {
                starved_cycles += 1;
            }
            while h < grid.t_steps && row_remaining[h] == 0 {
                h += 1;
            }
        }

        Schedule {
            cycles,
            executed: grid.total_ops() as u64,
            borrowed,
            starved_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_grid(t: usize, lanes: usize, rows: usize, cols: usize) -> OpGrid {
        OpGrid::from_fn(t, lanes, rows, cols, |_, _, _, _| true)
    }

    #[test]
    fn empty_grid_takes_zero_cycles() {
        let g = OpGrid::from_fn(8, 4, 2, 2, |_, _, _, _| false);
        let s = schedule(&g, EffectiveWindow::dense(), Priority::OwnFirst);
        assert_eq!(s, Schedule::empty());
    }

    #[test]
    fn dense_grid_takes_exactly_t_cycles() {
        let g = dense_grid(16, 4, 2, 4);
        for win in [
            EffectiveWindow::dense(),
            EffectiveWindow {
                depth: 5,
                lane: 2,
                rows: 1,
                cols: 1,
            },
        ] {
            for p in [Priority::OwnFirst, Priority::EarliestFirst] {
                let s = schedule(&g, win, p);
                assert_eq!(s.cycles, 16, "win {win:?} priority {p:?}");
                assert_eq!(s.executed, 16 * 4 * 2 * 4);
            }
        }
    }

    #[test]
    fn no_window_means_no_skipping_gains_beyond_empty_rows() {
        // Half the time rows are completely empty; even a dense window
        // skips them (the core simply never schedules an all-zero row),
        // matching zero-gating in the dense baseline.
        let g = OpGrid::from_fn(8, 2, 1, 1, |t, _, _, _| t % 2 == 0);
        let s = schedule(&g, EffectiveWindow::dense(), Priority::OwnFirst);
        assert_eq!(s.cycles, 4);
    }

    #[test]
    fn time_window_compacts_a_single_sparse_lane() {
        // Lane 0 has ops at t = 0,2,4,6; depth 3 window lets it run them
        // back-to-back: 4 cycles instead of 7.
        let g = OpGrid::from_fn(8, 1, 1, 1, |t, _, _, _| t % 2 == 0);
        let s = schedule(
            &g,
            EffectiveWindow {
                depth: 3,
                lane: 0,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        assert_eq!(s.cycles, 4);
        assert_eq!(s.starved_cycles, 0);
    }

    #[test]
    fn imbalanced_lanes_without_reach_are_limited_by_the_hot_lane() {
        // Lane 0 dense, lane 1 empty: without lane reach lane 1 starves
        // and the makespan equals lane 0's op count.
        let g = OpGrid::from_fn(8, 2, 1, 1, |_, lane, _, _| lane == 0);
        let s = schedule(
            &g,
            EffectiveWindow {
                depth: 4,
                lane: 0,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        assert_eq!(s.cycles, 8);
        assert!(s.starved_cycles > 0);
    }

    #[test]
    fn lane_reach_lets_idle_lane_help() {
        // Same imbalance, but with lane reach: the taps for distance d
        // are (0, -1, +1, ...), so reach 1 covers the lane below and
        // reach 2 covers both neighbours.
        let g = OpGrid::from_fn(8, 2, 1, 1, |_, lane, _, _| lane == 0);
        let s = schedule(
            &g,
            EffectiveWindow {
                depth: 4,
                lane: 1,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        // Two slots drain 8 ops: 4 cycles (slot 1 borrows via tap -1).
        assert_eq!(s.cycles, 4);
        assert!(s.borrowed > 0);

        // Hot lane 1 needs reach 2 (tap +1 only appears at distance 2).
        let g = OpGrid::from_fn(8, 2, 1, 1, |_, lane, _, _| lane == 1);
        let d1 = schedule(
            &g,
            EffectiveWindow {
                depth: 4,
                lane: 1,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        assert_eq!(d1.cycles, 8);
        let d2 = schedule(
            &g,
            EffectiveWindow {
                depth: 4,
                lane: 2,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        assert_eq!(d2.cycles, 4);
    }

    #[test]
    fn spatial_reach_routes_to_neighbour_pe() {
        // All ops in col 0; col-reach 1 lets col 1's slot help through
        // its -1 tap.
        let g = OpGrid::from_fn(8, 1, 1, 2, |_, _, _, col| col == 0);
        let no_reach = schedule(
            &g,
            EffectiveWindow {
                depth: 8,
                lane: 0,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        let reach = schedule(
            &g,
            EffectiveWindow {
                depth: 8,
                lane: 0,
                rows: 0,
                cols: 1,
            },
            Priority::OwnFirst,
        );
        assert_eq!(no_reach.cycles, 8);
        assert_eq!(reach.cycles, 4);
    }

    #[test]
    fn makespan_respects_bounds() {
        let g = OpGrid::from_fn(16, 4, 2, 2, |t, lane, row, col| {
            (t + lane + row + col) % 3 == 0
        });
        let win = EffectiveWindow {
            depth: 4,
            lane: 1,
            rows: 1,
            cols: 1,
        };
        for p in [Priority::OwnFirst, Priority::EarliestFirst] {
            let s = schedule(&g, win, p);
            assert!(s.cycles >= g.max_column_ops() as u64);
            assert!(s.cycles <= g.t_steps() as u64);
            assert_eq!(s.executed as usize, g.total_ops());
        }
    }

    #[test]
    fn larger_window_never_hurts() {
        let g = OpGrid::from_fn(32, 4, 1, 4, |t, lane, _, col| {
            (t * 7 + lane * 3 + col) % 4 == 0
        });
        let small = schedule(
            &g,
            EffectiveWindow {
                depth: 2,
                lane: 0,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        let big = schedule(
            &g,
            EffectiveWindow {
                depth: 6,
                lane: 2,
                rows: 0,
                cols: 2,
            },
            Priority::OwnFirst,
        );
        assert!(big.cycles <= small.cycles);
    }

    #[test]
    fn depth_one_with_reach_still_skips_empty_rows() {
        let g = OpGrid::from_fn(6, 2, 1, 1, |t, _, _, _| t < 3);
        let s = schedule(
            &g,
            EffectiveWindow {
                depth: 1,
                lane: 1,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        assert_eq!(s.cycles, 3);
    }

    #[test]
    fn earliest_first_matches_own_first_on_symmetric_input() {
        let g = dense_grid(8, 2, 2, 2);
        let win = EffectiveWindow {
            depth: 3,
            lane: 1,
            rows: 1,
            cols: 1,
        };
        let a = schedule(&g, win, Priority::OwnFirst);
        let b = schedule(&g, win, Priority::EarliestFirst);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn from_ops_sorts_unordered_input() {
        let g = OpGrid::from_ops(8, 1, 1, 2, [(5, 0, 0, 1), (1, 0, 0, 0), (3, 0, 0, 0)]);
        assert_eq!(g.col(0), &[1, 3]);
        assert_eq!(g.col(1), &[5]);
        assert_eq!(g.total_ops(), 3);
        assert_eq!(g.max_column_ops(), 2);
    }

    #[test]
    fn rebuild_reuses_storage_across_shapes() {
        let mut g = OpGrid::default();
        g.rebuild_from_ops(4, 2, 1, 1, &[(0, 0, 0, 0), (2, 1, 0, 0)]);
        assert_eq!(g.total_ops(), 2);
        g.rebuild_from_ops(2, 1, 2, 2, &[(1, 0, 1, 1)]);
        assert_eq!(g.total_ops(), 1);
        assert_eq!(g.t_steps(), 2);
        let s = schedule(&g, EffectiveWindow::dense(), Priority::OwnFirst);
        assert_eq!(s.executed, 1);
    }

    /// The event-driven core against the retained reference on a grid
    /// mix that exercises dormancy, waking and dead slots. Broad random
    /// coverage lives in the proptest suite (`tests/` of the façade).
    #[test]
    fn event_core_matches_reference_exactly() {
        let grids = [
            OpGrid::from_fn(24, 4, 2, 2, |t, l, r, c| {
                (t * 5 + l * 3 + r * 2 + c) % 4 == 0
            }),
            OpGrid::from_fn(16, 8, 1, 2, |t, l, _, c| (t + l + c) % 7 == 0),
            OpGrid::from_fn(10, 2, 1, 1, |t, l, _, _| l == 0 && t % 2 == 0),
            dense_grid(6, 2, 2, 2),
        ];
        let wins = [
            EffectiveWindow::dense(),
            EffectiveWindow {
                depth: 3,
                lane: 1,
                rows: 0,
                cols: 1,
            },
            EffectiveWindow {
                depth: 9,
                lane: 0,
                rows: 1,
                cols: 2,
            },
        ];
        let mut scratch = SchedScratch::new();
        let mut out = Vec::new();
        for g in &grids {
            for &win in &wins {
                for p in [Priority::OwnFirst, Priority::EarliestFirst] {
                    let (s_ref, a_ref) = reference::schedule_assign(g, win, p);
                    let s_new = schedule_assign_with(g, win, p, &mut scratch, &mut out);
                    assert_eq!(s_new, s_ref, "schedule diverged: win {win:?} p {p:?}");
                    assert_eq!(out, a_ref, "assignments diverged: win {win:?} p {p:?}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let g = OpGrid::from_fn(20, 4, 1, 4, |t, l, _, c| (t * 3 + l + c) % 3 == 0);
        let win = EffectiveWindow {
            depth: 4,
            lane: 1,
            rows: 0,
            cols: 1,
        };
        let fresh = schedule(&g, win, Priority::OwnFirst);
        let mut scratch = SchedScratch::new();
        for _ in 0..3 {
            assert_eq!(
                schedule_with(&g, win, Priority::OwnFirst, &mut scratch),
                fresh
            );
        }
    }

    /// `schedule_multi` must be bitwise identical to K independent
    /// `schedule_with` calls, in any window order, for any mix of
    /// reaches and depths — including duplicate windows and saturated
    /// grids where the depth-sharing proof cannot fire.
    #[test]
    fn schedule_multi_matches_independent_calls() {
        let grids = [
            OpGrid::from_fn(24, 4, 1, 4, |t, l, _, c| (t * 5 + l * 3 + c) % 4 == 0),
            OpGrid::from_fn(16, 2, 2, 2, |t, l, r, c| (t + l + r + c) % 7 != 2),
            OpGrid::from_fn(12, 2, 1, 1, |t, l, _, _| l == 0 && t % 2 == 0),
            OpGrid::from_fn(8, 2, 1, 2, |_, _, _, _| false),
        ];
        // A family shape like the paper's fanin-8 enumeration: several
        // reaches, multiple depths per reach, a duplicate, and windows
        // deliberately out of group order.
        let wins = [
            EffectiveWindow {
                depth: 5,
                lane: 1,
                rows: 0,
                cols: 1,
            },
            EffectiveWindow {
                depth: 8,
                lane: 0,
                rows: 0,
                cols: 0,
            },
            EffectiveWindow {
                depth: 3,
                lane: 1,
                rows: 0,
                cols: 1,
            },
            EffectiveWindow {
                depth: 4,
                lane: 0,
                rows: 0,
                cols: 0,
            },
            EffectiveWindow {
                depth: 3,
                lane: 2,
                rows: 1,
                cols: 2,
            },
            EffectiveWindow {
                depth: 8,
                lane: 0,
                rows: 0,
                cols: 0,
            },
            EffectiveWindow {
                depth: 1,
                lane: 0,
                rows: 1,
                cols: 0,
            },
        ];
        let mut scratch = SchedScratch::new();
        let mut out = Vec::new();
        for g in &grids {
            for p in [Priority::OwnFirst, Priority::EarliestFirst] {
                let share = schedule_multi(g, &wins, p, &mut scratch, &mut out);
                assert_eq!(out.len(), wins.len());
                assert_eq!(share.scheduled + share.replayed, wins.len());
                for (i, &win) in wins.iter().enumerate() {
                    let solo = schedule(g, win, p);
                    assert_eq!(out[i], solo, "window {i} ({win:?}) p {p:?}");
                }
            }
        }
    }

    #[test]
    fn schedule_multi_replays_duplicates_and_saturating_depths() {
        // A grid whose lag never reaches the deep window's allowance:
        // ops live only in rows 0..3, so with depth 100 the max lag is
        // at most 2 and every shallower same-reach window with depth
        // above it must replay rather than re-run.
        let g = OpGrid::from_fn(32, 2, 1, 2, |t, l, _, c| t < 3 && (l + c) % 2 == 0);
        let mk = |depth| EffectiveWindow {
            depth,
            lane: 1,
            rows: 0,
            cols: 1,
        };
        let wins = [mk(100), mk(50), mk(10), mk(10)];
        let mut out = Vec::new();
        let share = schedule_multi(
            &g,
            &wins,
            Priority::OwnFirst,
            &mut SchedScratch::new(),
            &mut out,
        );
        assert_eq!(share.scheduled, 1, "one pass serves the whole family");
        assert_eq!(share.replayed, 3);
        for (i, &win) in wins.iter().enumerate() {
            assert_eq!(out[i], schedule(&g, win, Priority::OwnFirst), "window {i}");
        }

        // An empty window list is a no-op.
        let share = schedule_multi(
            &g,
            &[],
            Priority::OwnFirst,
            &mut SchedScratch::new(),
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(share, MultiShare::default());
    }

    #[test]
    fn wide_families_keep_every_reach_resident() {
        // More distinct reaches than TAP_CACHE: the multi call must
        // widen the cache so a second call builds no tables (observable
        // as byte-identical results and, indirectly, by the capacity).
        // Both spatial extents exceed 1 so the grid takes the tap-table
        // path rather than the 2-D stencil (which builds no tables).
        let g = OpGrid::from_fn(20, 4, 2, 4, |t, l, r, c| (t + l * 2 + r + c) % 3 == 0);
        let wins: Vec<EffectiveWindow> = (0..6)
            .map(|i| EffectiveWindow {
                depth: 3 + i,
                lane: i % 3,
                rows: 0,
                cols: i / 3 + 1,
            })
            .collect();
        let mut scratch = SchedScratch::new();
        let mut out = Vec::new();
        schedule_multi(&g, &wins, Priority::OwnFirst, &mut scratch, &mut out);
        let first = out.clone();
        assert!(
            scratch.taps.len() >= 6,
            "all 6 reaches resident, got {}",
            scratch.taps.len()
        );
        schedule_multi(&g, &wins, Priority::OwnFirst, &mut scratch, &mut out);
        assert_eq!(out, first);
    }

    #[test]
    #[should_panic(expected = "exceeds u32 indexing")]
    fn oversized_time_axis_panics_clearly() {
        let mut g = OpGrid::default();
        g.reset_dims(u32::MAX as usize + 1, 1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "exceeding u32 indexing")]
    fn oversized_column_count_panics_clearly() {
        // The guard fires before any CSR array is resized, so the test
        // never touches 16 GiB of col_off.
        let mut g = OpGrid::default();
        g.reset_dims(1, u32::MAX as usize, 1, 1);
    }

    #[test]
    #[should_panic(expected = "more than u32::MAX")]
    fn op_total_overflowing_on_final_column_panics_clearly() {
        // Counts that only pass u32::MAX with the *last* column's
        // contribution: the per-entry start-offset check cannot see the
        // grand total, so without the final guard the packed head
        // cursors would silently truncate.
        let mut g = OpGrid {
            t_steps: 1,
            lanes: 2,
            rows: 1,
            cols: 1,
            col_off: vec![u32::MAX, u32::MAX, 0],
            ..OpGrid::default()
        };
        g.finish_counts();
    }

    /// Contended reach windows drive the column-indexed ready queue
    /// through its chain-pop, stale-invalidation and sleep-with-cache
    /// paths; the reference must agree exactly, assignments included.
    #[test]
    fn ready_queue_matches_reference_under_contention() {
        // Clustered columns: a few hot columns hold long runs while
        // their neighbours are empty or sparse, so borrows hammer the
        // same heads and cached winners go stale in every way.
        let grids = [
            OpGrid::from_fn(32, 4, 2, 2, |t, l, r, c| {
                (l == 1 && r == 0 && c == 0) || (t + l * 7 + r * 3 + c * 5) % 11 == 0
            }),
            OpGrid::from_fn(48, 3, 1, 3, |t, l, _, c| {
                (c == 1 && t % 2 == 0) || (t * 3 + l * 5 + c) % 13 < 2
            }),
            OpGrid::from_fn(40, 2, 2, 2, |t, l, r, c| (t / 4 + l + r + c) % 3 != 1),
        ];
        let wins = [
            EffectiveWindow {
                depth: 3,
                lane: 2,
                rows: 2,
                cols: 2,
            },
            EffectiveWindow {
                depth: 2,
                lane: 1,
                rows: 1,
                cols: 2,
            },
            EffectiveWindow {
                depth: 5,
                lane: 2,
                rows: 0,
                cols: 1,
            },
        ];
        let mut scratch = SchedScratch::new();
        let mut out = Vec::new();
        for g in &grids {
            for &win in &wins {
                for p in [Priority::OwnFirst, Priority::EarliestFirst] {
                    let (s_ref, a_ref) = reference::schedule_assign(g, win, p);
                    let s_new = schedule_assign_with(g, win, p, &mut scratch, &mut out);
                    assert_eq!(s_new, s_ref, "schedule diverged: win {win:?} p {p:?}");
                    assert_eq!(out, a_ref, "assignments diverged: win {win:?} p {p:?}");
                }
            }
        }
    }
}
