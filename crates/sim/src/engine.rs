//! The greedy borrowing scheduler.
//!
//! Every architecture in the paper reduces to the same scheduling problem:
//! a grid of *effectual operations* indexed by blocked coordinates
//! `(t, lane, row, col)` must be drained by a machine with one slot per
//! `(lane, row, col)`, where a slot may execute an op whose coordinates
//! exceed its own by at most the architecture's borrowing window
//! ([`EffectiveWindow`]). Time is special: the hardware buffers
//! (ABUF/BBUF) hold a sliding window of `depth` original time rows
//! starting at the oldest unfinished row `H`; a slot can only see ops with
//! `t ≤ H + depth − 1`, and `H` advances once row `H` is fully consumed.
//! This models the output-synchronization and buffer-fullness stalls of
//! the paper's pipeline in one mechanism.
//!
//! The per-cycle arbitration is greedy with the priority scheme of
//! Bit-Tactical (which the paper adopts, §III): a slot first executes its
//! own pending op if one is in the window, otherwise it borrows the
//! earliest reachable op, breaking ties toward the smallest displacement.

use crate::config::Priority;
use crate::window::EffectiveWindow;

/// A grid of effectual operations in blocked coordinates.
///
/// Coordinates: `t ∈ 0..t_steps` (time), `lane ∈ 0..lanes`,
/// `row ∈ 0..rows` (A-side spatial), `col ∈ 0..cols` (B-side spatial).
/// Single-sparse architectures use a degenerate axis of extent 1.
#[derive(Debug, Clone)]
pub struct OpGrid {
    t_steps: usize,
    lanes: usize,
    rows: usize,
    cols: usize,
    /// Per-column sorted list of op time indices; the column of
    /// `(lane, row, col)` is `(lane * rows + row) * cols + col`.
    col_ops: Vec<Vec<u32>>,
    total: usize,
}

impl OpGrid {
    /// Builds the grid from a predicate over `(t, lane, row, col)`.
    pub fn from_fn<F>(t_steps: usize, lanes: usize, rows: usize, cols: usize, mut f: F) -> Self
    where
        F: FnMut(usize, usize, usize, usize) -> bool,
    {
        let mut col_ops = vec![Vec::new(); lanes * rows * cols];
        let mut total = 0;
        for t in 0..t_steps {
            for lane in 0..lanes {
                for row in 0..rows {
                    for col in 0..cols {
                        if f(t, lane, row, col) {
                            col_ops[(lane * rows + row) * cols + col].push(t as u32);
                            total += 1;
                        }
                    }
                }
            }
        }
        OpGrid {
            t_steps,
            lanes,
            rows,
            cols,
            col_ops,
            total,
        }
    }

    /// Builds the grid from an explicit op list of `(t, lane, row, col)`
    /// coordinates (used for scheduling over a *compressed* stream).
    pub fn from_ops(
        t_steps: usize,
        lanes: usize,
        rows: usize,
        cols: usize,
        ops: impl IntoIterator<Item = (usize, usize, usize, usize)>,
    ) -> Self {
        let mut col_ops = vec![Vec::new(); lanes * rows * cols];
        let mut total = 0;
        for (t, lane, row, col) in ops {
            debug_assert!(t < t_steps && lane < lanes && row < rows && col < cols);
            col_ops[(lane * rows + row) * cols + col].push(t as u32);
            total += 1;
        }
        for ops in &mut col_ops {
            ops.sort_unstable();
        }
        OpGrid {
            t_steps,
            lanes,
            rows,
            cols,
            col_ops,
            total,
        }
    }

    /// Number of time steps of the dense schedule.
    pub fn t_steps(&self) -> usize {
        self.t_steps
    }

    /// Total number of effectual operations.
    pub fn total_ops(&self) -> usize {
        self.total
    }

    /// Largest per-slot op count — a lower bound on the makespan.
    pub fn max_column_ops(&self) -> usize {
        self.col_ops.iter().map(Vec::len).max().unwrap_or(0)
    }

    #[inline]
    fn column(&self, lane: usize, row: usize, col: usize) -> usize {
        (lane * self.rows + row) * self.cols + col
    }
}

/// Outcome of scheduling one [`OpGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Makespan in cycles.
    pub cycles: u64,
    /// Ops executed (equals the grid's total by construction).
    pub executed: u64,
    /// Ops executed by a slot other than their own (borrow events).
    pub borrowed: u64,
    /// Cycles in which at least one slot idled while work remained
    /// outside its window — the under-utilization the paper's Figure 2
    /// mechanisms exist to reduce.
    pub starved_cycles: u64,
}

impl Schedule {
    /// An empty schedule (zero-op grid).
    pub fn empty() -> Self {
        Schedule {
            cycles: 0,
            executed: 0,
            borrowed: 0,
            starved_cycles: 0,
        }
    }
}

/// Displacement taps for a dimension with borrowing distance `d`:
/// exactly `1 + d` taps, alternating `0, -1, +1, -2, +2, …` (smallest
/// magnitude first). This matches both Figure 2 of the paper (whose
/// `d2`/`d3` borrow arrows move in the negative direction for `d = 1`)
/// and Table II's mux fan-in accounting of `1 + d` sources per
/// dimension.
#[inline]
fn signed_offsets(d: usize) -> impl Iterator<Item = isize> {
    (0..=d as isize).map(|i| if i % 2 == 1 { -(i / 2 + 1) } else { i / 2 })
}

/// Applies a signed offset within `[0, len)`, returning `None` when the
/// source falls outside the grid.
#[inline]
fn offset(base: usize, delta: isize, len: usize) -> Option<usize> {
    let v = base as isize + delta;
    (v >= 0 && (v as usize) < len).then_some(v as usize)
}

/// One op's placement in the compacted schedule: the op originally at
/// `(t, src)` executed at compacted cycle `cycle` on slot `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Original time row of the op.
    pub t: u32,
    /// Original `(lane, row, col)` of the op.
    pub src: (usize, usize, usize),
    /// Compacted cycle (0-based) at which it executed.
    pub cycle: u32,
    /// Slot `(lane, row, col)` that executed it.
    pub slot: (usize, usize, usize),
}

/// Schedules the grid under the given window and priority policy.
///
/// Dense inputs take exactly `t_steps` cycles; an empty grid takes zero.
/// The makespan is always at least `max_column_ops` (one op per slot per
/// cycle) and at most `t_steps` (the dense schedule is always feasible).
pub fn schedule(grid: &OpGrid, win: EffectiveWindow, priority: Priority) -> Schedule {
    run(grid, win, priority, None)
}

/// Like [`schedule`], additionally returning where every op executed —
/// the compacted stream layout that B preprocessing produces (§IV-A
/// step 1).
pub fn schedule_assign(
    grid: &OpGrid,
    win: EffectiveWindow,
    priority: Priority,
) -> (Schedule, Vec<Assignment>) {
    let mut assigns = Vec::with_capacity(grid.total);
    let s = run(grid, win, priority, Some(&mut assigns));
    (s, assigns)
}

fn run(
    grid: &OpGrid,
    win: EffectiveWindow,
    priority: Priority,
    mut collect: Option<&mut Vec<Assignment>>,
) -> Schedule {
    assert!(win.depth >= 1, "window depth must be at least 1");
    if grid.total == 0 {
        return Schedule::empty();
    }

    let mut head = vec![0usize; grid.col_ops.len()];
    let mut row_remaining = vec![0u32; grid.t_steps];
    for ops in &grid.col_ops {
        for &t in ops {
            row_remaining[t as usize] += 1;
        }
    }

    let mut h = 0usize; // oldest unfinished time row
    while h < grid.t_steps && row_remaining[h] == 0 {
        h += 1;
    }

    let mut remaining = grid.total;
    let mut cycles = 0u64;
    let mut borrowed = 0u64;
    let mut starved_cycles = 0u64;

    while remaining > 0 {
        cycles += 1;
        let horizon = (h + win.depth - 1).min(grid.t_steps - 1) as u32;
        let mut starved = false;

        for lane in 0..grid.lanes {
            for row in 0..grid.rows {
                for col in 0..grid.cols {
                    // Own op first (Bit-Tactical priority), if within the
                    // time window.
                    let own = grid.column(lane, row, col);
                    let own_front = grid.col_ops[own].get(head[own]).copied();
                    if priority == Priority::OwnFirst {
                        if let Some(t) = own_front {
                            if t <= horizon {
                                head[own] += 1;
                                row_remaining[t as usize] -= 1;
                                remaining -= 1;
                                if let Some(out) = collect.as_deref_mut() {
                                    out.push(Assignment {
                                        t,
                                        src: (lane, row, col),
                                        cycle: cycles as u32 - 1,
                                        slot: (lane, row, col),
                                    });
                                }
                                continue;
                            }
                        }
                    }

                    // Scan the borrowing window for the best candidate:
                    // earliest time, then smallest displacement. Spatial
                    // and lane displacements are bidirectional (distance
                    // semantics, Figure 2); time is forward-only.
                    let mut best: Option<(u32, usize, usize)> = None;
                    'scan: for dl in signed_offsets(win.lane) {
                        let Some(sl) = offset(lane, dl, grid.lanes) else {
                            continue;
                        };
                        for dr in signed_offsets(win.rows) {
                            let Some(sr) = offset(row, dr, grid.rows) else {
                                continue;
                            };
                            for dc in signed_offsets(win.cols) {
                                let Some(sc) = offset(col, dc, grid.cols) else {
                                    continue;
                                };
                                let c = grid.column(sl, sr, sc);
                                if let Some(&t) = grid.col_ops[c].get(head[c]) {
                                    if t > horizon {
                                        continue;
                                    }
                                    let dsum =
                                        dl.unsigned_abs() + dr.unsigned_abs() + dc.unsigned_abs();
                                    let cand = (t, dsum, c);
                                    if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                                        best = Some(cand);
                                        if t == h as u32 && dsum == 0 {
                                            break 'scan;
                                        }
                                    }
                                }
                            }
                        }
                    }

                    match best {
                        Some((t, dsum, c)) => {
                            head[c] += 1;
                            row_remaining[t as usize] -= 1;
                            remaining -= 1;
                            if dsum > 0 {
                                borrowed += 1;
                            }
                            if let Some(out) = collect.as_deref_mut() {
                                let src_lane = c / (grid.rows * grid.cols);
                                let rem = c % (grid.rows * grid.cols);
                                out.push(Assignment {
                                    t,
                                    src: (src_lane, rem / grid.cols, rem % grid.cols),
                                    cycle: cycles as u32 - 1,
                                    slot: (lane, row, col),
                                });
                            }
                        }
                        None => {
                            // This slot idles; if any work remains in the
                            // grid this is a starvation event.
                            starved = true;
                        }
                    }
                }
            }
        }

        if starved && remaining > 0 {
            starved_cycles += 1;
        }
        while h < grid.t_steps && row_remaining[h] == 0 {
            h += 1;
        }
    }

    Schedule {
        cycles,
        executed: grid.total as u64,
        borrowed,
        starved_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_grid(t: usize, lanes: usize, rows: usize, cols: usize) -> OpGrid {
        OpGrid::from_fn(t, lanes, rows, cols, |_, _, _, _| true)
    }

    #[test]
    fn empty_grid_takes_zero_cycles() {
        let g = OpGrid::from_fn(8, 4, 2, 2, |_, _, _, _| false);
        let s = schedule(&g, EffectiveWindow::dense(), Priority::OwnFirst);
        assert_eq!(s, Schedule::empty());
    }

    #[test]
    fn dense_grid_takes_exactly_t_cycles() {
        let g = dense_grid(16, 4, 2, 4);
        for win in [
            EffectiveWindow::dense(),
            EffectiveWindow {
                depth: 5,
                lane: 2,
                rows: 1,
                cols: 1,
            },
        ] {
            for p in [Priority::OwnFirst, Priority::EarliestFirst] {
                let s = schedule(&g, win, p);
                assert_eq!(s.cycles, 16, "win {win:?} priority {p:?}");
                assert_eq!(s.executed, 16 * 4 * 2 * 4);
            }
        }
    }

    #[test]
    fn no_window_means_no_skipping_gains_beyond_empty_rows() {
        // Half the time rows are completely empty; even a dense window
        // skips them (the core simply never schedules an all-zero row),
        // matching zero-gating in the dense baseline.
        let g = OpGrid::from_fn(8, 2, 1, 1, |t, _, _, _| t % 2 == 0);
        let s = schedule(&g, EffectiveWindow::dense(), Priority::OwnFirst);
        assert_eq!(s.cycles, 4);
    }

    #[test]
    fn time_window_compacts_a_single_sparse_lane() {
        // Lane 0 has ops at t = 0,2,4,6; depth 3 window lets it run them
        // back-to-back: 4 cycles instead of 7.
        let g = OpGrid::from_fn(8, 1, 1, 1, |t, _, _, _| t % 2 == 0);
        let s = schedule(
            &g,
            EffectiveWindow {
                depth: 3,
                lane: 0,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        assert_eq!(s.cycles, 4);
        assert_eq!(s.starved_cycles, 0);
    }

    #[test]
    fn imbalanced_lanes_without_reach_are_limited_by_the_hot_lane() {
        // Lane 0 dense, lane 1 empty: without lane reach lane 1 starves
        // and the makespan equals lane 0's op count.
        let g = OpGrid::from_fn(8, 2, 1, 1, |_, lane, _, _| lane == 0);
        let s = schedule(
            &g,
            EffectiveWindow {
                depth: 4,
                lane: 0,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        assert_eq!(s.cycles, 8);
        assert!(s.starved_cycles > 0);
    }

    #[test]
    fn lane_reach_lets_idle_lane_help() {
        // Same imbalance, but with lane reach: the taps for distance d
        // are (0, -1, +1, ...), so reach 1 covers the lane below and
        // reach 2 covers both neighbours.
        let g = OpGrid::from_fn(8, 2, 1, 1, |_, lane, _, _| lane == 0);
        let s = schedule(
            &g,
            EffectiveWindow {
                depth: 4,
                lane: 1,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        // Two slots drain 8 ops: 4 cycles (slot 1 borrows via tap -1).
        assert_eq!(s.cycles, 4);
        assert!(s.borrowed > 0);

        // Hot lane 1 needs reach 2 (tap +1 only appears at distance 2).
        let g = OpGrid::from_fn(8, 2, 1, 1, |_, lane, _, _| lane == 1);
        let d1 = schedule(
            &g,
            EffectiveWindow {
                depth: 4,
                lane: 1,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        assert_eq!(d1.cycles, 8);
        let d2 = schedule(
            &g,
            EffectiveWindow {
                depth: 4,
                lane: 2,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        assert_eq!(d2.cycles, 4);
    }

    #[test]
    fn spatial_reach_routes_to_neighbour_pe() {
        // All ops in col 0; col-reach 1 lets col 1's slot help through
        // its -1 tap.
        let g = OpGrid::from_fn(8, 1, 1, 2, |_, _, _, col| col == 0);
        let no_reach = schedule(
            &g,
            EffectiveWindow {
                depth: 8,
                lane: 0,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        let reach = schedule(
            &g,
            EffectiveWindow {
                depth: 8,
                lane: 0,
                rows: 0,
                cols: 1,
            },
            Priority::OwnFirst,
        );
        assert_eq!(no_reach.cycles, 8);
        assert_eq!(reach.cycles, 4);
    }

    #[test]
    fn makespan_respects_bounds() {
        let g = OpGrid::from_fn(16, 4, 2, 2, |t, lane, row, col| {
            (t + lane + row + col) % 3 == 0
        });
        let win = EffectiveWindow {
            depth: 4,
            lane: 1,
            rows: 1,
            cols: 1,
        };
        for p in [Priority::OwnFirst, Priority::EarliestFirst] {
            let s = schedule(&g, win, p);
            assert!(s.cycles >= g.max_column_ops() as u64);
            assert!(s.cycles <= g.t_steps() as u64);
            assert_eq!(s.executed as usize, g.total_ops());
        }
    }

    #[test]
    fn larger_window_never_hurts() {
        let g = OpGrid::from_fn(32, 4, 1, 4, |t, lane, _, col| {
            (t * 7 + lane * 3 + col) % 4 == 0
        });
        let small = schedule(
            &g,
            EffectiveWindow {
                depth: 2,
                lane: 0,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        let big = schedule(
            &g,
            EffectiveWindow {
                depth: 6,
                lane: 2,
                rows: 0,
                cols: 2,
            },
            Priority::OwnFirst,
        );
        assert!(big.cycles <= small.cycles);
    }

    #[test]
    fn depth_one_with_reach_still_skips_empty_rows() {
        let g = OpGrid::from_fn(6, 2, 1, 1, |t, _, _, _| t < 3);
        let s = schedule(
            &g,
            EffectiveWindow {
                depth: 1,
                lane: 1,
                rows: 0,
                cols: 0,
            },
            Priority::OwnFirst,
        );
        assert_eq!(s.cycles, 3);
    }

    #[test]
    fn earliest_first_matches_own_first_on_symmetric_input() {
        let g = dense_grid(8, 2, 2, 2);
        let win = EffectiveWindow {
            depth: 3,
            lane: 1,
            rows: 1,
            cols: 1,
        };
        let a = schedule(&g, win, Priority::OwnFirst);
        let b = schedule(&g, win, Priority::EarliestFirst);
        assert_eq!(a.cycles, b.cycles);
    }
}
