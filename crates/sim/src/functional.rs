//! Functional execution of borrowing schedules.
//!
//! The cycle model answers "how long"; this module answers "is the
//! computation still correct". It replays the exact schedules the
//! engine produces — including every borrow — with real INT8 values and
//! accumulates the products into the output matrix, so any scheduler
//! defect (a lost op, a double execution, a mispaired operand after
//! shuffling or metadata-driven selection) shows up as a wrong GEMM
//! result against [`griffin_tensor::matrix::Matrix::matmul`].
//!
//! This mirrors the hardware's data paths: an assignment's *source*
//! coordinates are what the metadata / arbitration logic encodes, and
//! the accumulator routing (the paper's dashed blue arrows and extra
//! adder trees) returns each product to the accumulator of its original
//! output element.

use griffin_tensor::block::{ATileView, BTileView};
use griffin_tensor::error::TensorError;
use griffin_tensor::matrix::Matrix;
use griffin_tensor::shape::CoreDims;

use crate::config::Priority;
use crate::engine::{schedule_assign, schedule_assign_with};
use crate::grid::{build_a_grid, build_b_grid};
use crate::scratch::SimScratch;
use crate::shuffle::LaneMap;
use crate::window::{BorrowWindow, EffectiveWindow};

/// Checks operand shapes and allocates the output.
fn check_shapes(a: &Matrix<i8>, b: &Matrix<i8>) -> Result<Matrix<i32>, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            expected: format!("B with {} rows", a.cols()),
            found: format!("B with {} rows", b.rows()),
        });
    }
    Matrix::<i32>::zeros(a.rows(), b.cols())
}

/// Executes `C = A × B` through a `Sparse.B` borrowing schedule.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `A.cols() != B.rows()`.
pub fn sparse_b_product(
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    win: BorrowWindow,
    shuffle: bool,
    core: CoreDims,
    priority: Priority,
) -> Result<Matrix<i32>, TensorError> {
    let mut c = check_shapes(a, b)?;
    let b_mask = b.mask();
    let lanes = LaneMap::from_flag(shuffle);
    let eff = EffectiveWindow::for_b(win);
    let nt = b.cols().div_ceil(core.n0);
    let mut scratch = SimScratch::new();

    for n_tile in 0..nt {
        let view = BTileView::new(&b_mask, core, n_tile * core.n0);
        build_b_grid(&mut scratch.grid, &mut scratch.span, &view, lanes);
        let mut assigns = Vec::new();
        schedule_assign_with(
            &scratch.grid,
            eff,
            priority,
            &mut scratch.sched,
            &mut assigns,
        );
        for asg in assigns {
            let t = asg.t as usize;
            let k = t * core.k0 + lanes.source_lane(asg.src.0, t);
            let n = n_tile * core.n0 + asg.src.2;
            let w = i32::from(b[(k, n)]);
            debug_assert_ne!(w, 0, "scheduled op must be a nonzero weight");
            for m in 0..a.rows() {
                c[(m, n)] += i32::from(a[(m, k)]) * w;
            }
        }
    }
    Ok(c)
}

/// Executes `C = A × B` through a `Sparse.A` borrowing schedule.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `A.cols() != B.rows()`.
pub fn sparse_a_product(
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    win: BorrowWindow,
    shuffle: bool,
    core: CoreDims,
    priority: Priority,
) -> Result<Matrix<i32>, TensorError> {
    let mut c = check_shapes(a, b)?;
    let a_mask = a.mask();
    let lanes = LaneMap::from_flag(shuffle);
    let eff = EffectiveWindow::for_a(win);
    let mt = a.rows().div_ceil(core.m0);
    let mut scratch = SimScratch::new();

    for m_tile in 0..mt {
        let view = ATileView::new(&a_mask, core, m_tile * core.m0);
        build_a_grid(&mut scratch.grid, &mut scratch.span, &view, lanes);
        let mut assigns = Vec::new();
        schedule_assign_with(
            &scratch.grid,
            eff,
            priority,
            &mut scratch.sched,
            &mut assigns,
        );
        for asg in assigns {
            let t = asg.t as usize;
            let k = t * core.k0 + lanes.source_lane(asg.src.0, t);
            let m = m_tile * core.m0 + asg.src.1;
            let act = i32::from(a[(m, k)]);
            debug_assert_ne!(act, 0, "scheduled op must be a nonzero activation");
            for n in 0..b.cols() {
                c[(m, n)] += act * i32::from(b[(k, n)]);
            }
        }
    }
    Ok(c)
}

/// Executes `C = A × B` through the two-stage `Sparse.AB` pipeline
/// (preprocess B, then skip A over the compressed stream).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `A.cols() != B.rows()`.
pub fn sparse_ab_product(
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    a_win: BorrowWindow,
    b_win: BorrowWindow,
    shuffle: bool,
    core: CoreDims,
    priority: Priority,
) -> Result<Matrix<i32>, TensorError> {
    let mut c = check_shapes(a, b)?;
    let b_mask = b.mask();
    let lanes = LaneMap::from_flag(shuffle);
    let stage2_win = EffectiveWindow {
        depth: 1 + a_win.d1,
        lane: a_win.d2,
        rows: a_win.d3,
        cols: 0,
    };
    let mt = a.rows().div_ceil(core.m0);
    let nt = b.cols().div_ceil(core.n0);
    let mut scratch = SimScratch::new();
    let slots = core.k0 * core.m0 * core.n0;

    for n_tile in 0..nt {
        // Stage 1: compress this B tile column.
        let view = BTileView::new(&b_mask, core, n_tile * core.n0);
        build_b_grid(&mut scratch.grid, &mut scratch.span, &view, lanes);
        let mut b_assigns = Vec::new();
        let sched_b = schedule_assign_with(
            &scratch.grid,
            EffectiveWindow::for_b(b_win),
            priority,
            &mut scratch.sched,
            &mut b_assigns,
        );
        if sched_b.cycles == 0 {
            continue;
        }

        // Dense slot-indexed back-map (compressed position -> original
        // (k, n)) instead of hashing every pair twice; sized once per
        // column and sentinel-reset per row tile.
        let mut back: Vec<(u32, u32)> = vec![(u32::MAX, u32::MAX); sched_b.cycles as usize * slots];
        let mut ops = Vec::new();
        for m_tile in 0..mt {
            back.fill((u32::MAX, u32::MAX));
            ops.clear();
            for asg in &b_assigns {
                let t = asg.t as usize;
                let k = t * core.k0 + lanes.source_lane(asg.src.0, t);
                let n = n_tile * core.n0 + asg.src.2;
                for row in 0..core.m0 {
                    let m = m_tile * core.m0 + row;
                    if m < a.rows() && a[(m, k)] != 0 {
                        ops.push((asg.cycle as usize, asg.slot.0, row, asg.slot.2));
                        let pos = asg.cycle as usize * slots
                            + ((asg.slot.0 * core.m0 + row) * core.n0 + asg.slot.2);
                        back[pos] = (k as u32, n as u32);
                    }
                }
            }
            scratch.grid2.rebuild_from_ops(
                sched_b.cycles as usize,
                core.k0,
                core.m0,
                core.n0,
                &ops,
            );
            let (_, pair_assigns) = schedule_assign(&scratch.grid2, stage2_win, priority);
            for p in pair_assigns {
                let pos =
                    p.t as usize * slots + ((p.src.0 * core.m0 + p.src.1) * core.n0 + p.src.2);
                let (k, n) = back[pos];
                debug_assert_ne!(k, u32::MAX, "replayed pair missing from the back-map");
                let (k, n) = (k as usize, n as usize);
                let m = m_tile * core.m0 + p.src.1;
                c[(m, n)] += i32::from(a[(m, k)]) * i32::from(b[(k, n)]);
            }
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_tensor::gen::TensorGen;

    fn core() -> CoreDims {
        CoreDims::PAPER
    }

    fn operands(
        m: usize,
        k: usize,
        n: usize,
        da: f64,
        db: f64,
        seed: u64,
    ) -> (Matrix<i8>, Matrix<i8>) {
        let mut g = TensorGen::seeded(seed);
        let a = if da >= 1.0 {
            g.dense(m, k)
        } else {
            g.relu_activations(m, k, da)
        };
        let b = if db >= 1.0 {
            g.dense(k, n)
        } else {
            g.pruned_weights(k, n, db)
        };
        (a, b)
    }

    #[test]
    fn sparse_b_schedule_computes_the_exact_product() {
        let (a, b) = operands(8, 96, 24, 1.0, 0.25, 1);
        let reference = a.matmul(&b).unwrap();
        for shuffle in [false, true] {
            let c = sparse_b_product(
                &a,
                &b,
                BorrowWindow::new(4, 0, 1),
                shuffle,
                core(),
                Priority::OwnFirst,
            )
            .unwrap();
            assert_eq!(c, reference, "shuffle={shuffle}");
        }
    }

    #[test]
    fn sparse_a_schedule_computes_the_exact_product() {
        let (a, b) = operands(12, 64, 20, 0.4, 1.0, 2);
        let reference = a.matmul(&b).unwrap();
        for shuffle in [false, true] {
            let c = sparse_a_product(
                &a,
                &b,
                BorrowWindow::new(2, 1, 1),
                shuffle,
                core(),
                Priority::OwnFirst,
            )
            .unwrap();
            assert_eq!(c, reference, "shuffle={shuffle}");
        }
    }

    #[test]
    fn sparse_ab_two_stage_computes_the_exact_product() {
        let (a, b) = operands(8, 80, 20, 0.5, 0.3, 3);
        let reference = a.matmul(&b).unwrap();
        for shuffle in [false, true] {
            let c = sparse_ab_product(
                &a,
                &b,
                BorrowWindow::new(2, 0, 0),
                BorrowWindow::new(2, 0, 1),
                shuffle,
                core(),
                Priority::OwnFirst,
            )
            .unwrap();
            assert_eq!(c, reference, "shuffle={shuffle}");
        }
    }

    #[test]
    fn extreme_windows_stay_correct() {
        let (a, b) = operands(4, 48, 8, 0.6, 0.2, 4);
        let reference = a.matmul(&b).unwrap();
        for win in [BorrowWindow::ZERO, BorrowWindow::new(8, 3, 2)] {
            let c = sparse_b_product(&a, &b, win, true, core(), Priority::OwnFirst).unwrap();
            assert_eq!(c, reference, "win={win}");
        }
    }

    #[test]
    fn earliest_first_priority_is_also_correct() {
        let (a, b) = operands(8, 64, 16, 0.5, 0.3, 5);
        let reference = a.matmul(&b).unwrap();
        let c = sparse_ab_product(
            &a,
            &b,
            BorrowWindow::new(1, 1, 0),
            BorrowWindow::new(3, 0, 1),
            true,
            core(),
            Priority::EarliestFirst,
        )
        .unwrap();
        assert_eq!(c, reference);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Matrix::<i8>::zeros(4, 8).unwrap();
        let b = Matrix::<i8>::zeros(9, 4).unwrap();
        assert!(sparse_b_product(
            &a,
            &b,
            BorrowWindow::new(2, 0, 0),
            false,
            core(),
            Priority::OwnFirst
        )
        .is_err());
    }

    #[test]
    fn ragged_dimensions_stay_correct() {
        let (a, b) = operands(5, 37, 11, 0.5, 0.3, 6);
        let reference = a.matmul(&b).unwrap();
        let cb = sparse_b_product(
            &a,
            &b,
            BorrowWindow::new(4, 0, 1),
            true,
            core(),
            Priority::OwnFirst,
        )
        .unwrap();
        assert_eq!(cb, reference);
        let ca = sparse_a_product(
            &a,
            &b,
            BorrowWindow::new(2, 1, 0),
            true,
            core(),
            Priority::OwnFirst,
        )
        .unwrap();
        assert_eq!(ca, reference);
    }
}
