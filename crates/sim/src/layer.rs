//! The simulator's unit of work: one GEMM layer with sparsity masks.

use griffin_tensor::error::TensorError;
use griffin_tensor::gen::TensorGen;
use griffin_tensor::mask::SparsityMask;
use griffin_tensor::shape::GemmShape;

/// One GEMM operation `C(M×N) += A(M×K) × B(K×N)` together with the
/// nonzero structure of both operands.
///
/// ```
/// use griffin_sim::layer::GemmLayer;
/// use griffin_tensor::shape::GemmShape;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let layer = GemmLayer::with_densities(GemmShape::new(32, 64, 32)?, 0.5, 0.2, 7)?;
/// assert!(layer.b.density() < 0.35);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GemmLayer {
    /// Problem shape.
    pub shape: GemmShape,
    /// `M × K` activation nonzero mask.
    pub a: SparsityMask,
    /// `K × N` weight nonzero mask.
    pub b: SparsityMask,
    /// How many statistically identical copies of this GEMM the layer
    /// executes (grouped convolutions run one GEMM per group; we
    /// simulate one representative group and scale). Defaults to 1.
    pub replicas: usize,
}

impl GemmLayer {
    /// Creates a layer, validating mask shapes against the GEMM shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when a mask does not match
    /// the declared shape.
    pub fn new(shape: GemmShape, a: SparsityMask, b: SparsityMask) -> Result<Self, TensorError> {
        if a.rows() != shape.m || a.cols() != shape.k {
            return Err(TensorError::ShapeMismatch {
                expected: format!("A mask {}x{}", shape.m, shape.k),
                found: format!("A mask {}x{}", a.rows(), a.cols()),
            });
        }
        if b.rows() != shape.k || b.cols() != shape.n {
            return Err(TensorError::ShapeMismatch {
                expected: format!("B mask {}x{}", shape.k, shape.n),
                found: format!("B mask {}x{}", b.rows(), b.cols()),
            });
        }
        Ok(GemmLayer {
            shape,
            a,
            b,
            replicas: 1,
        })
    }

    /// Sets the replica count (builder style), for grouped convolutions.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        assert!(replicas > 0, "replica count must be positive");
        self.replicas = replicas;
        self
    }

    /// Convenience constructor: i.i.d. Bernoulli masks with the given
    /// activation / weight densities and a deterministic seed.
    ///
    /// # Errors
    ///
    /// Propagates shape validation errors.
    pub fn with_densities(
        shape: GemmShape,
        a_density: f64,
        b_density: f64,
        seed: u64,
    ) -> Result<Self, TensorError> {
        let mut gen = TensorGen::seeded(seed);
        let a = gen.bernoulli_mask(shape.m, shape.k, a_density);
        let b = gen.bernoulli_mask(shape.k, shape.n, b_density);
        GemmLayer::new(shape, a, b)
    }

    /// Dense baseline latency of the layer including replicas.
    pub fn dense_cycles(&self, core: griffin_tensor::shape::CoreDims) -> u64 {
        self.shape.dense_cycles(core) * self.replicas as u64
    }

    /// Density of the activation mask.
    pub fn a_density(&self) -> f64 {
        self.a.density()
    }

    /// Density of the weight mask.
    pub fn b_density(&self) -> f64 {
        self.b.density()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        let shape = GemmShape::new(4, 8, 4).unwrap();
        let good_a = SparsityMask::ones(4, 8);
        let good_b = SparsityMask::ones(8, 4);
        assert!(GemmLayer::new(shape, good_a.clone(), good_b.clone()).is_ok());
        let bad_a = SparsityMask::ones(8, 4);
        assert!(GemmLayer::new(shape, bad_a, good_b).is_err());
        let bad_b = SparsityMask::ones(4, 8);
        assert!(GemmLayer::new(shape, good_a, bad_b).is_err());
    }

    #[test]
    fn with_densities_is_deterministic() {
        let shape = GemmShape::new(16, 32, 16).unwrap();
        let l1 = GemmLayer::with_densities(shape, 0.4, 0.2, 9).unwrap();
        let l2 = GemmLayer::with_densities(shape, 0.4, 0.2, 9).unwrap();
        assert_eq!(l1.a, l2.a);
        assert_eq!(l1.b, l2.b);
    }

    #[test]
    fn densities_are_reported() {
        let shape = GemmShape::new(64, 64, 64).unwrap();
        let l = GemmLayer::with_densities(shape, 1.0, 0.0, 1).unwrap();
        assert_eq!(l.a_density(), 1.0);
        assert_eq!(l.b_density(), 0.0);
    }
}
