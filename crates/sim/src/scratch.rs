//! Reusable simulation scratch: the zero-alloc contract.
//!
//! A sweep campaign runs the tile scheduler hundreds of thousands of
//! times; with fresh buffers per tile, allocator traffic dominates the
//! small grids the paper's core sizes produce. [`SimScratch`] bundles
//! every buffer the tile simulators need — the reusable CSR grids, the
//! scheduler's [`SchedScratch`] (heads, row counts, cached tap tables,
//! frontier state), the stage-1 assignment stream and stage-2 op list
//! of the dual pipeline, and the SparTen wave accumulators — so the
//! steady state allocates **nothing**:
//!
//! * per *tile* (the hot loop): zero allocations once every buffer has
//!   grown to the campaign's largest grid;
//! * per *layer*: only the dual pipeline's per-column compressed-stream
//!   cache (amortized over all tile pairs of the column) and the
//!   sampled tile index list;
//! * per *worker*: one `SimScratch`, created once and threaded through
//!   `simulate_*_with` / `Accelerator::run_with`.
//!
//! The scratch carries no results — only capacity. Reusing one scratch
//! across arbitrary grids, windows and architectures is deterministic
//! and bit-identical to fresh buffers (covered by differential tests).

use std::collections::HashMap;

use griffin_tensor::shape::CoreDims;

use crate::config::Priority;
use crate::engine::{Assignment, OpGrid, SchedScratch, Schedule};
use crate::window::EffectiveWindow;

/// Identity of one memoized tile grid inside a reuse scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct GridKey {
    /// Layer index within the workload being simulated.
    pub layer: u32,
    /// Tile index along the grid's home axis (`n_tile` for B, `m_tile`
    /// for A).
    pub tile: u32,
    /// Whether the rotation shuffler was applied.
    pub rotate: bool,
    /// `true` for B-side grids, `false` for A-side.
    pub b_side: bool,
    /// Core dimensions the grid was blocked for.
    pub core: CoreDims,
    /// Batch plane (seed-variant index) the grid belongs to. Plain
    /// `run_with` simulations always use plane 0; `run_batch` keys each
    /// seed variant by its position in the batch so K same-shape
    /// workloads can share one reuse scope without colliding.
    pub plane: u32,
}

/// Identity of one memoized tile *schedule* inside a reuse scope: the
/// grid it ran on plus the effective window and arbitration priority.
/// Two architectures of a family that resolve to the same key provably
/// produce the same [`Schedule`], so the multi-arch simulators serve
/// the second one from this cache instead of re-running the event core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SchedKey {
    /// The memoized grid the schedule was computed on.
    pub grid: GridKey,
    /// Effective scheduling window.
    pub win: EffectiveWindow,
    /// Arbitration priority.
    pub priority: Priority,
}

/// Cross-architecture schedule-sharing counters, accumulated by the
/// `simulate_*_multi_arch*` entries for cache-stats telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShareStats {
    /// Windows requested through multi-arch scheduling entries.
    pub multi_windows: u64,
    /// Full event-core passes actually executed for those windows.
    pub multi_passes: u64,
    /// Windows served by saturating-depth replay inside
    /// [`schedule_multi`](crate::engine::schedule_multi).
    pub multi_replayed: u64,
    /// Windows served from the window-keyed schedule cache (duplicate
    /// effective windows across a family, or re-requests within one
    /// reuse scope).
    pub sched_cache_hits: u64,
}

impl ShareStats {
    /// Schedules that were shared rather than recomputed: for a family
    /// of `K` window requests resolving to one distinct schedule, this
    /// is `K − 1`.
    pub fn shared(&self) -> u64 {
        self.multi_windows - self.multi_passes
    }
}

/// Reusable buffers for layer/network simulation. See the module docs
/// for the allocation contract.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Scheduler state (heads, row counts, tap tables, frontiers).
    pub(crate) sched: SchedScratch,
    /// Primary tile grid (single-sparse tiles; dual stage 1).
    pub(crate) grid: OpGrid,
    /// Word cache for the A/B builders' per-row bit spans.
    pub(crate) span: Vec<u64>,
    /// Active grid-reuse scope, set by campaign drivers that run the
    /// same workload under many architectures in a row.
    pub(crate) scope: Option<u128>,
    /// Memoized tile grids of the current scope. Tile grids depend only
    /// on the masks, the tile index, the shuffle flag and the core —
    /// not on the borrowing window — so one build serves every
    /// architecture of a sweep.
    pub(crate) grids: HashMap<GridKey, OpGrid>,
    /// Window-keyed schedule cache of the current scope, the
    /// cross-architecture companion of `grids`: schedules depend on the
    /// grid *and* the effective window, so family members that share
    /// both reuse the cached result.
    pub(crate) scheds: HashMap<SchedKey, Schedule>,
    /// Cross-architecture sharing counters (monotonic per scratch).
    pub(crate) share_stats: ShareStats,
    /// Layer index the pipeline is currently simulating (keys the grid
    /// cache within a scope).
    pub(crate) layer_idx: u32,
    /// Batch plane of the workload currently simulating (keys the grid
    /// cache within a scope; 0 outside `run_batch`).
    pub(crate) plane: u32,
    /// Reusable grids for the word-parallel batch builders when no
    /// reuse scope is active (one per plane, grown on demand).
    pub(crate) batch_grids: Vec<OpGrid>,
    /// Secondary grid for the dual pipeline's stage-2 replay.
    pub(crate) grid2: OpGrid,
    /// Assignment stream of the most recent `schedule_assign_with`.
    pub(crate) assigns: Vec<Assignment>,
    /// Stage-2 effectual-pair op list of the dual pipeline.
    pub(crate) filtered: Vec<(usize, usize, usize, usize)>,
    /// SparTen per-chunk pair counts of one output.
    pub(crate) chunk_pairs: Vec<u64>,
    /// SparTen per-chunk pair sums of the current dispatch wave.
    pub(crate) wave_sum: Vec<u64>,
    /// SparTen per-chunk pair maxima of the current dispatch wave.
    pub(crate) wave_max: Vec<u64>,
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens (or continues) a grid-reuse scope.
    ///
    /// `token` must uniquely identify the *inputs* of the simulation —
    /// the workload's masks (e.g. a fingerprint over workload spec,
    /// category and mask seed). While a scope is active, tile op grids
    /// are memoized and shared across architectures; entering a scope
    /// with a different token drops the previous scope's grids, so the
    /// cache never holds more than one workload's tiles.
    ///
    /// Callers that simulate each workload once (no architecture sweep)
    /// should simply not open a scope — grids are then rebuilt in place
    /// with zero allocations, which is cheaper than memoizing.
    pub fn begin_reuse_scope(&mut self, token: u128) {
        if self.scope != Some(token) {
            self.grids.clear();
            self.scheds.clear();
            self.scope = Some(token);
        }
    }

    /// Closes the grid-reuse scope and frees the memoized grids and
    /// schedules.
    pub fn end_reuse_scope(&mut self) {
        self.scope = None;
        self.grids.clear();
        self.scheds.clear();
    }

    /// Cross-architecture schedule-sharing counters accumulated so far.
    pub fn share_stats(&self) -> ShareStats {
        self.share_stats
    }

    /// Resets the sharing counters (e.g. between benchmark phases).
    pub fn reset_share_stats(&mut self) {
        self.share_stats = ShareStats::default();
    }

    /// Selects the batch plane that keys memoized tile grids (plane 0
    /// is the plain single-run plane). Batch drivers give each
    /// seed-variant workload its own plane so one reuse scope holds a
    /// whole batch without key collisions; plain `run_with` callers
    /// never need to touch this.
    pub fn set_plane(&mut self, plane: u32) {
        self.plane = plane;
    }
}
