//! Layer- and network-level simulation.
//!
//! Composes the tile schedulers ([`crate::single`], [`crate::dual`],
//! [`crate::sparten`]) with the bandwidth model into the end-to-end
//! latency estimate the paper's Python simulator produces: per-layer
//! cycles including output-synchronization, buffer-fullness and
//! bandwidth stalls, summed over the network.

use griffin_tensor::compress::{metadata_bits_for_fanin, CompressedB};

use crate::bandwidth::{bw_floor_cycles, layer_traffic};
use crate::config::{SimConfig, SparsityMode};
use crate::dual::simulate_sparse_ab_with;
use crate::layer::GemmLayer;
use crate::report::{LayerReport, NetworkReport};
use crate::scratch::SimScratch;
use crate::single::{
    simulate_dense, simulate_sparse_a_batch, simulate_sparse_a_multi_arch,
    simulate_sparse_a_multi_arch_batch, simulate_sparse_a_with, simulate_sparse_b_batch,
    simulate_sparse_b_multi_arch, simulate_sparse_b_multi_arch_batch, simulate_sparse_b_with,
    ArchVariant, ScheduleAccum,
};
use crate::sparten::{simulate_sparten_with, SpartenParams};

/// Bytes each dense B element costs in SRAM for this mode: compressed
/// architectures stream nonzero values plus metadata; dense ones stream
/// everything.
fn b_stream_factor(layer: &GemmLayer, mode: SparsityMode) -> f64 {
    if !mode.compresses_b() {
        return 1.0;
    }
    let meta_bits = match mode {
        SparsityMode::SparseB { win, .. } => {
            // AMUX select metadata: one of (1+db1)(1+db2) sources
            // (Table II), plus db3 routing when present.
            metadata_bits_for_fanin((1 + win.d1) * (1 + win.d2) * (1 + win.d3))
        }
        SparsityMode::SparseAB { a, b, .. } => {
            metadata_bits_for_fanin(1 + a.d1 * (1 + a.d2) + b.d1 * (1 + b.d2) + b.d3)
        }
        // SparTen stores a full bitmask: 1 bit per dense element; we fold
        // that into metadata bits per nonzero below via the ratio.
        SparsityMode::SparTen { .. } => 8,
        _ => 0,
    };
    CompressedB::from_mask(&layer.b, meta_bits).bytes_per_dense_element()
}

/// Simulates one layer under a sparsity mode, returning the full report.
pub fn simulate_layer(layer: &GemmLayer, mode: SparsityMode, cfg: &SimConfig) -> LayerReport {
    simulate_layer_with(layer, mode, cfg, &mut SimScratch::new())
}

/// [`simulate_layer`] with caller-provided scratch — the zero-alloc
/// steady-state path campaign workers thread through every layer.
pub fn simulate_layer_with(
    layer: &GemmLayer,
    mode: SparsityMode,
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> LayerReport {
    let acc: ScheduleAccum = match mode {
        SparsityMode::Dense => simulate_dense(layer, cfg),
        SparsityMode::SparseA { win, shuffle } => {
            simulate_sparse_a_with(layer, win, shuffle, cfg, scratch)
        }
        SparsityMode::SparseB { win, shuffle } => {
            simulate_sparse_b_with(layer, win, shuffle, cfg, scratch)
        }
        SparsityMode::SparseAB { a, b, shuffle } => {
            simulate_sparse_ab_with(layer, a, b, shuffle, cfg, scratch)
        }
        SparsityMode::SparTen { a_sparse, b_sparse } => {
            let params = SpartenParams {
                macs: cfg.core.macs(),
                ..SpartenParams::default()
            };
            simulate_sparten_with(layer, a_sparse, b_sparse, params, cfg, scratch)
        }
    };
    assemble_layer_report(layer, mode, cfg, acc)
}

/// Turns a layer's schedule accumulator into its full report: bandwidth
/// floors, replica weighting, per-layer counters. Shared by the
/// single-layer and batched paths so both produce bit-identical reports
/// from identical accumulators.
fn assemble_layer_report(
    layer: &GemmLayer,
    mode: SparsityMode,
    cfg: &SimConfig,
    acc: ScheduleAccum,
) -> LayerReport {
    let traffic = layer_traffic(layer.shape, cfg.core, b_stream_factor(layer, mode));
    let bw_floor = bw_floor_cycles(traffic, cfg.bw);
    let reps = layer.replicas as f64;
    // Even a fully-ineffectual layer occupies the pipeline for a cycle.
    let cycles = acc.cycles.max(bw_floor).max(1.0) * reps;

    LayerReport {
        dense_cycles: layer.dense_cycles(cfg.core),
        schedule_cycles: acc.cycles * reps,
        bw_floor_cycles: bw_floor * reps,
        cycles,
        effectual_ops: acc.ops * reps,
        borrowed_ops: acc.borrowed * reps,
        starved_cycles: acc.starved * reps,
        sampled: acc.sampled,
    }
}

/// Simulates a whole network (sequence of GEMM layers) under one mode.
pub fn simulate_network(
    layers: &[GemmLayer],
    mode: SparsityMode,
    cfg: &SimConfig,
) -> NetworkReport {
    simulate_network_with(layers, mode, cfg, &mut SimScratch::new())
}

/// [`simulate_network`] with caller-provided scratch shared by every
/// layer.
pub fn simulate_network_with(
    layers: &[GemmLayer],
    mode: SparsityMode,
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> NetworkReport {
    NetworkReport {
        layers: layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                // Keys the grid-reuse cache when a scope is active.
                scratch.layer_idx = i as u32;
                simulate_layer_with(l, mode, cfg, scratch)
            })
            .collect(),
    }
}

/// Simulates K seed-variant networks (same layer count, same per-layer
/// shapes) under one mode, batching each layer's tile grids
/// word-parallel where the mode supports it.
///
/// `networks[p]` is plane `p`'s layer list. Single-sparse modes
/// (`SparseA`, `SparseB`) batch through [`simulate_sparse_a_batch`] /
/// [`simulate_sparse_b_batch`]; `Dense` is pure arithmetic; the dual
/// and SparTen pipelines run plane-sequential (their per-pair stage-2
/// replay has no shared word walk), each plane keyed separately in the
/// grid cache via `scratch.plane`. Every plane's report is **exactly**
/// what [`simulate_network_with`] produces for it alone — the batched
/// builders yield identical grids and the accumulator math is shared —
/// which is what lets the sweep executor mix batched and unbatched
/// execution freely.
///
/// Layer shapes that diverge across planes (or an uneven layer count)
/// fall back to plane-sequential simulation for the whole call.
pub fn simulate_network_batch(
    networks: &[&[GemmLayer]],
    mode: SparsityMode,
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> Vec<NetworkReport> {
    let Some(first) = networks.first() else {
        return Vec::new();
    };
    let batchable = matches!(
        mode,
        SparsityMode::SparseA { .. } | SparsityMode::SparseB { .. }
    ) && networks.iter().all(|n| {
        n.len() == first.len()
            && n.iter()
                .zip(first.iter())
                .all(|(a, b)| a.shape == b.shape && a.replicas == b.replicas)
    });
    if !batchable {
        // Plane-sequential fallback; each plane keys its own grids.
        let reports = networks
            .iter()
            .enumerate()
            .map(|(p, net)| {
                scratch.plane = p as u32;
                simulate_network_with(net, mode, cfg, scratch)
            })
            .collect();
        scratch.plane = 0;
        return reports;
    }

    let mut reports: Vec<NetworkReport> = networks
        .iter()
        .map(|_| NetworkReport { layers: Vec::new() })
        .collect();
    for i in 0..first.len() {
        scratch.layer_idx = i as u32;
        let layers: Vec<&GemmLayer> = networks.iter().map(|n| &n[i]).collect();
        let accs = match mode {
            SparsityMode::SparseA { win, shuffle } => {
                simulate_sparse_a_batch(&layers, win, shuffle, cfg, scratch)
            }
            SparsityMode::SparseB { win, shuffle } => {
                simulate_sparse_b_batch(&layers, win, shuffle, cfg, scratch)
            }
            _ => unreachable!("batchable is only true for single-sparse modes"),
        };
        for (p, acc) in accs.into_iter().enumerate() {
            reports[p]
                .layers
                .push(assemble_layer_report(layers[p], mode, cfg, acc));
        }
    }
    reports
}

/// Simulates K seed-variant networks under V architecture variants of
/// one sparsity family in a single pass, returning `[variant][plane]`
/// reports.
///
/// This is the arch-axis extension of [`simulate_network_batch`]:
/// besides the seed-plane batchability checks (same layer count, same
/// per-layer shapes and replicas across planes) it checks the *arch
/// axis* — every mode must belong to the same single-sparse family
/// (all `SparseB` or all `SparseA`), which is the precondition for the
/// multi-arch tile entries to share grids and schedules. When both
/// axes batch, each layer runs through one
/// [`simulate_sparse_b_multi_arch_batch`] /
/// [`simulate_sparse_a_multi_arch_batch`] call; when only the arch
/// axis batches, planes run sequentially through the single-plane
/// multi-arch entries; otherwise the whole call falls back to
/// per-variant [`simulate_network_batch`]. Every report is **exactly**
/// what a per-variant call produces — the multi-arch schedulers are
/// pinned bitwise-identical — so callers may mix family-batched and
/// per-arch execution freely.
pub fn simulate_network_multi_arch(
    networks: &[&[GemmLayer]],
    modes: &[SparsityMode],
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> Vec<Vec<NetworkReport>> {
    let Some(first) = networks.first() else {
        return vec![Vec::new(); modes.len()];
    };
    // Arch-axis batchability: one single-sparse family end to end.
    let all_b = modes
        .iter()
        .all(|m| matches!(m, SparsityMode::SparseB { .. }));
    let all_a = modes
        .iter()
        .all(|m| matches!(m, SparsityMode::SparseA { .. }));
    if !(all_b || all_a) || modes.is_empty() {
        return modes
            .iter()
            .map(|&mode| simulate_network_batch(networks, mode, cfg, scratch))
            .collect();
    }
    let variants: Vec<ArchVariant> = modes
        .iter()
        .map(|m| match *m {
            SparsityMode::SparseB { win, shuffle } | SparsityMode::SparseA { win, shuffle } => {
                (win, shuffle)
            }
            _ => unreachable!("family membership checked above"),
        })
        .collect();
    // Seed-plane batchability: identical shape sequence on every plane.
    let planes_batch = networks.iter().all(|n| {
        n.len() == first.len()
            && n.iter()
                .zip(first.iter())
                .all(|(a, b)| a.shape == b.shape && a.replicas == b.replicas)
    });

    let mut reports: Vec<Vec<NetworkReport>> = modes
        .iter()
        .map(|_| {
            networks
                .iter()
                .map(|_| NetworkReport { layers: Vec::new() })
                .collect()
        })
        .collect();
    if planes_batch {
        for i in 0..first.len() {
            scratch.layer_idx = i as u32;
            let layers: Vec<&GemmLayer> = networks.iter().map(|n| &n[i]).collect();
            let accs = if all_b {
                simulate_sparse_b_multi_arch_batch(&layers, &variants, cfg, scratch)
            } else {
                simulate_sparse_a_multi_arch_batch(&layers, &variants, cfg, scratch)
            };
            for (v, row) in accs.into_iter().enumerate() {
                for (p, acc) in row.into_iter().enumerate() {
                    reports[v][p]
                        .layers
                        .push(assemble_layer_report(layers[p], modes[v], cfg, acc));
                }
            }
        }
    } else {
        // Plane-sequential, arch-batched: each plane keys its own grids.
        for (p, net) in networks.iter().enumerate() {
            scratch.plane = p as u32;
            for (i, l) in net.iter().enumerate() {
                scratch.layer_idx = i as u32;
                let accs = if all_b {
                    simulate_sparse_b_multi_arch(l, &variants, cfg, scratch)
                } else {
                    simulate_sparse_a_multi_arch(l, &variants, cfg, scratch)
                };
                for (v, acc) in accs.into_iter().enumerate() {
                    reports[v][p]
                        .layers
                        .push(assemble_layer_report(l, modes[v], cfg, acc));
                }
            }
        }
        scratch.plane = 0;
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::BwPolicy;
    use crate::window::BorrowWindow;
    use griffin_tensor::shape::GemmShape;

    fn layer(da: f64, db: f64, seed: u64) -> GemmLayer {
        GemmLayer::with_densities(GemmShape::new(32, 256, 64).unwrap(), da, db, seed).unwrap()
    }

    fn star_b() -> SparsityMode {
        SparsityMode::SparseB {
            win: BorrowWindow::new(4, 0, 1),
            shuffle: true,
        }
    }

    #[test]
    fn dense_mode_reports_unit_speedup() {
        let l = layer(1.0, 1.0, 1);
        let r = simulate_layer(&l, SparsityMode::Dense, &SimConfig::exact());
        assert!((r.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn provisioned_bw_never_floors() {
        let l = layer(1.0, 0.2, 2);
        let r = simulate_layer(&l, star_b(), &SimConfig::exact());
        assert_eq!(r.bw_floor_cycles, 0.0);
        assert_eq!(r.cycles, r.schedule_cycles);
    }

    #[test]
    fn fixed_baseline_bw_caps_sparse_speedup() {
        let l = layer(1.0, 0.2, 3);
        let cfg = SimConfig {
            bw: BwPolicy::paper_baseline(),
            ..SimConfig::exact()
        };
        let r = simulate_layer(&l, star_b(), &cfg);
        // A-side traffic is dense, so the floor should bind near 1x.
        assert!(r.bw_floor_cycles > r.schedule_cycles);
        assert!(r.speedup() < 1.5);
    }

    #[test]
    fn compressed_b_floors_below_dense_b_traffic() {
        let l = layer(1.0, 0.2, 4);
        let f = b_stream_factor(&l, star_b());
        assert!(f < 0.5, "factor {f} should reflect 20% density + metadata");
        assert!(f > 0.2);
    }

    #[test]
    fn network_report_sums_layers() {
        let layers = vec![layer(1.0, 0.2, 5), layer(1.0, 0.3, 6)];
        let net = simulate_network(&layers, star_b(), &SimConfig::exact());
        assert_eq!(net.layers.len(), 2);
        let manual: f64 = net.layers.iter().map(|l| l.cycles).sum();
        assert_eq!(net.cycles(), manual);
        assert!(net.speedup() > 1.0);
    }

    #[test]
    fn all_modes_run_end_to_end() {
        let l = layer(0.5, 0.2, 7);
        let cfg = SimConfig::default();
        for mode in [
            SparsityMode::Dense,
            SparsityMode::SparseA {
                win: BorrowWindow::new(2, 1, 0),
                shuffle: true,
            },
            star_b(),
            SparsityMode::SparseAB {
                a: BorrowWindow::new(2, 0, 0),
                b: BorrowWindow::new(2, 0, 1),
                shuffle: true,
            },
            SparsityMode::SparTen {
                a_sparse: true,
                b_sparse: true,
            },
        ] {
            let r = simulate_layer(&l, mode, &cfg);
            assert!(r.cycles > 0.0, "{mode:?}");
            assert!(r.speedup() > 0.5, "{mode:?}");
        }
    }
}
