//! SparTen-style per-MAC comparison model.
//!
//! SparTen (MICRO 2019) is the paper's main dual-sparse comparison point.
//! Architecturally it differs from the Griffin family in three ways that
//! matter for cycles and cost (§VI-B, §VI-E, Table VII):
//!
//! * **no K-unrolling**: each PE is a scalar MAC with its own
//!   accumulator, computing one output's inner product sequentially;
//! * **time-only routing, per MAC**: each MAC streams the *intersection*
//!   of its compressed operand chunks (deep, depth-128 buffers), so
//!   compaction within one output is nearly ideal;
//! * **coarse-grain load balancing**: whole output computations are
//!   dispatched to idle MACs, so imbalance exists only across outputs.
//!
//! We model exactly that: per output `(m, n)` the work is the per-chunk
//! intersection cardinality of `A[m, :]` and `B[:, n]` (at least one
//! cycle per occupied chunk, modelling the chunk pipeline), and outputs
//! are list-scheduled onto the MAC pool.

use griffin_tensor::mask::SparsityMask;

use crate::config::{Fidelity, SimConfig};
use crate::layer::GemmLayer;
use crate::sampling::sample_indices;
use crate::scratch::SimScratch;
use crate::single::ScheduleAccum;

/// Structural parameters of the SparTen model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpartenParams {
    /// Number of scalar MAC units (matched to the baseline: 1024).
    pub macs: usize,
    /// Depth of the per-PE compressed sequence buffers (paper: 128).
    pub buffer_depth: usize,
}

impl Default for SpartenParams {
    fn default() -> Self {
        SpartenParams {
            macs: 1024,
            buffer_depth: 128,
        }
    }
}

/// Effectual pairs of one output element per `buffer_depth`-wide chunk
/// of the reduction dimension, written into `out` (length
/// `⌈k / chunk⌉`). Returns the total.
#[allow(clippy::too_many_arguments)]
fn output_chunk_pairs(
    a: &SparsityMask,
    b: &SparsityMask,
    m: usize,
    n: usize,
    k: usize,
    chunk: usize,
    a_sparse: bool,
    b_sparse: bool,
    out: &mut [u64],
) -> u64 {
    let mut total = 0u64;
    for (c, slot) in out.iter_mut().enumerate() {
        let base = c * chunk;
        let end = (base + chunk).min(k);
        let mut pairs = 0u64;
        for kk in base..end {
            let a_nz = a.get(m, kk);
            let b_nz = b.get(kk, n);
            let effectual = match (a_sparse, b_sparse) {
                (true, true) => a_nz && b_nz,
                (true, false) => a_nz,
                (false, true) => b_nz,
                (false, false) => true,
            };
            if effectual {
                pairs += 1;
            }
        }
        *slot = pairs;
        total += pairs;
    }
    total
}

/// Simulates a layer on a SparTen-style architecture.
///
/// `a_sparse` / `b_sparse` select the one-sided variants `SparTen.A` /
/// `SparTen.B` or the full `SparTen.AB`.
pub fn simulate_sparten(
    layer: &GemmLayer,
    a_sparse: bool,
    b_sparse: bool,
    params: SpartenParams,
    cfg: &SimConfig,
) -> ScheduleAccum {
    simulate_sparten_with(
        layer,
        a_sparse,
        b_sparse,
        params,
        cfg,
        &mut SimScratch::new(),
    )
}

/// [`simulate_sparten`] with caller-provided scratch for the per-chunk
/// and per-wave accumulators.
pub fn simulate_sparten_with(
    layer: &GemmLayer,
    a_sparse: bool,
    b_sparse: bool,
    params: SpartenParams,
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> ScheduleAccum {
    let (m, k, n) = (layer.shape.m, layer.shape.k, layer.shape.n);

    // Sample output rows for tractability on big layers; columns are
    // kept exact. The sample must fill whole dispatch waves (macs
    // outputs), otherwise a partial wave's cost would be scaled as if
    // the idle MACs had been busy.
    let rows_per_wave = params.macs.div_ceil(n.max(1));
    let row_fidelity = match cfg.fidelity {
        Fidelity::Exact => Fidelity::Exact,
        Fidelity::Sampled { tiles, seed } => Fidelity::Sampled {
            tiles: tiles.max(8).max(rows_per_wave),
            seed,
        },
    };
    let (rows, scale) = sample_indices(m, row_fidelity);

    // Coarse-grain dispatch: outputs are issued to the MAC pool in
    // waves of `macs`, and each wave streams its operand chunks through
    // the depth-`buffer_depth` buffers roughly in step (the compressed
    // sequence fetcher is shared). A wave's chunk therefore costs
    // between the mean and the max of the per-output pair counts; the
    // relaxation constant 0.5 models the partial decoupling the FIFOs
    // provide. This is what caps SparTen below ideal compaction (the
    // paper measures 3.9x for SparTen.B at ~81-89% weight sparsity).
    const BARRIER_RELAXATION: f64 = 0.5;
    let chunks_n = k.div_ceil(params.buffer_depth);
    scratch.chunk_pairs.clear();
    scratch.chunk_pairs.resize(chunks_n, 0);
    scratch.wave_sum.clear();
    scratch.wave_sum.resize(chunks_n, 0);
    scratch.wave_max.clear();
    scratch.wave_max.resize(chunks_n, 0);
    let pairs = &mut scratch.chunk_pairs;
    let wave_sum = &mut scratch.wave_sum;
    let wave_max = &mut scratch.wave_max;
    let mut wave_count = 0usize;
    let mut ops = 0f64;
    let mut cycles = 0f64;
    let mut starved = 0f64;

    let flush = |sum: &mut [u64],
                 max: &mut [u64],
                 count: &mut usize,
                 cycles: &mut f64,
                 starved: &mut f64| {
        if *count == 0 {
            return;
        }
        for c in 0..sum.len() {
            if max[c] == 0 {
                continue;
            }
            let mean = sum[c] as f64 / *count as f64;
            let wave_cost = mean + BARRIER_RELAXATION * (max[c] as f64 - mean);
            *cycles += wave_cost.max(1.0);
            *starved += wave_cost - mean;
            sum[c] = 0;
            max[c] = 0;
        }
        *count = 0;
    };

    for &mi in &rows {
        for ni in 0..n {
            let total = output_chunk_pairs(
                &layer.a,
                &layer.b,
                mi,
                ni,
                k,
                params.buffer_depth,
                a_sparse,
                b_sparse,
                pairs,
            );
            ops += total as f64;
            for c in 0..chunks_n {
                wave_sum[c] += pairs[c];
                wave_max[c] = wave_max[c].max(pairs[c]);
            }
            wave_count += 1;
            if wave_count == params.macs {
                flush(
                    wave_sum,
                    wave_max,
                    &mut wave_count,
                    &mut cycles,
                    &mut starved,
                );
            }
        }
    }
    flush(
        wave_sum,
        wave_max,
        &mut wave_count,
        &mut cycles,
        &mut starved,
    );

    ScheduleAccum {
        cycles: (cycles * scale).max(1.0),
        ops: ops * scale,
        borrowed: 0.0,
        starved: starved * scale,
        sampled: scale > 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_tensor::shape::{CoreDims, GemmShape};

    fn layer(m: usize, k: usize, n: usize, da: f64, db: f64, seed: u64) -> GemmLayer {
        GemmLayer::with_densities(GemmShape::new(m, k, n).unwrap(), da, db, seed).unwrap()
    }

    #[test]
    fn dense_input_costs_about_macs_over_pool() {
        let l = layer(32, 256, 32, 1.0, 1.0, 1);
        let acc = simulate_sparten(
            &l,
            true,
            true,
            SpartenParams::default(),
            &SimConfig::exact(),
        );
        let ideal = (32.0 * 256.0 * 32.0) / 1024.0;
        assert!(
            (acc.cycles - ideal).abs() / ideal < 0.05,
            "{} vs {}",
            acc.cycles,
            ideal
        );
    }

    #[test]
    fn sparten_ab_approaches_ideal_intersection_speedup() {
        // 50% x 20% -> ~10% effectual; deep buffers + per-MAC streams
        // should realize most of the 10x over its own dense run.
        let l = layer(64, 512, 64, 0.5, 0.2, 2);
        let acc = simulate_sparten(
            &l,
            true,
            true,
            SpartenParams::default(),
            &SimConfig::exact(),
        );
        let dense_ideal = (64.0 * 512.0 * 64.0) / 1024.0;
        let speedup = dense_ideal / acc.cycles;
        assert!(speedup > 6.0, "speedup {speedup}");
    }

    #[test]
    fn one_sided_variants_skip_only_their_operand() {
        let l = layer(32, 512, 32, 0.5, 0.2, 3);
        let cfg = SimConfig::exact();
        let p = SpartenParams::default();
        let ab = simulate_sparten(&l, true, true, p, &cfg);
        let only_b = simulate_sparten(&l, false, true, p, &cfg);
        let only_a = simulate_sparten(&l, true, false, p, &cfg);
        assert!(ab.cycles < only_b.cycles);
        assert!(ab.cycles < only_a.cycles);
        // B is sparser than A, so SparTen.B is faster than SparTen.A.
        assert!(only_b.cycles < only_a.cycles);
    }

    #[test]
    fn speedup_vs_tiled_dense_baseline_matches_paper_ballpark() {
        // SparTen.B on an 80%-sparse weight tensor: paper reports ~3.9x
        // over the tiled dense baseline.
        let l = layer(64, 1024, 64, 1.0, 0.19, 4);
        let acc = simulate_sparten(
            &l,
            false,
            true,
            SpartenParams::default(),
            &SimConfig::exact(),
        );
        let dense = l.shape.dense_cycles(CoreDims::PAPER) as f64;
        let speedup = dense / acc.cycles;
        assert!(speedup > 3.0 && speedup < 6.0, "speedup {speedup}");
    }

    #[test]
    fn sampled_rows_are_unbiased() {
        let l = layer(128, 256, 32, 0.5, 0.3, 5);
        let exact = simulate_sparten(
            &l,
            true,
            true,
            SpartenParams::default(),
            &SimConfig::exact(),
        );
        let cfg = SimConfig {
            fidelity: Fidelity::Sampled { tiles: 16, seed: 6 },
            ..SimConfig::default()
        };
        let sampled = simulate_sparten(&l, true, true, SpartenParams::default(), &cfg);
        let rel = (sampled.cycles - exact.cycles).abs() / exact.cycles;
        assert!(rel < 0.15, "rel {rel}");
    }

    #[test]
    fn empty_chunks_cost_nothing() {
        let a = SparsityMask::zeros(1, 256);
        let b = SparsityMask::ones(256, 1);
        let mut out = vec![0u64; 2];
        let total = output_chunk_pairs(&a, &b, 0, 0, 256, 128, true, true, &mut out);
        assert_eq!(total, 0);
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn chunk_pairs_split_across_chunks() {
        let mut a = SparsityMask::zeros(1, 256);
        a.set(0, 0, true);
        a.set(0, 200, true);
        let b = SparsityMask::ones(256, 1);
        let mut out = vec![0u64; 2];
        let total = output_chunk_pairs(&a, &b, 0, 0, 256, 128, true, true, &mut out);
        assert_eq!(total, 2);
        assert_eq!(out, vec![1, 1]);
    }

    #[test]
    fn wave_barrier_keeps_speedup_below_ideal() {
        // Ideal intersection speedup at 50% x 20% is 10x; the chunk
        // barrier must keep SparTen visibly below it.
        let l = layer(64, 1024, 64, 0.5, 0.2, 9);
        let acc = simulate_sparten(
            &l,
            true,
            true,
            SpartenParams::default(),
            &SimConfig::exact(),
        );
        let ideal = (64.0 * 1024.0 * 64.0) / 1024.0;
        let speedup = ideal / acc.cycles;
        assert!(
            speedup < 9.0,
            "speedup {speedup} suspiciously close to ideal"
        );
        assert!(acc.starved > 0.0);
    }
}
