//! Simulator configuration types.

use griffin_tensor::shape::CoreDims;

use crate::bandwidth::BwPolicy;
use crate::window::BorrowWindow;

/// Arbitration priority when several nonzero candidates are visible
/// (§III: "we use a similar priority mechanism as [Bit-Tactical]").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// A slot executes its own pending op first, then borrows the
    /// earliest reachable op (Bit-Tactical's scheme; the default).
    #[default]
    OwnFirst,
    /// A slot always takes the earliest reachable op, draining old time
    /// rows as fast as possible.
    EarliestFirst,
}

/// How much of a layer to simulate.
///
/// Under unstructured sparsity the output tiles of a layer are
/// statistically homogeneous, so simulating a deterministic random subset
/// and scaling is accurate to within sampling noise while being orders of
/// magnitude cheaper for the large design-space sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// Simulate every output tile.
    Exact,
    /// Simulate at most `tiles` output tiles (or tile pairs for dual
    /// sparsity), chosen by a seeded RNG, and scale the cycle count.
    Sampled {
        /// Upper bound on simulated tiles per layer.
        tiles: usize,
        /// RNG seed for the tile subset.
        seed: u64,
    },
}

impl Default for Fidelity {
    fn default() -> Self {
        Fidelity::Sampled {
            tiles: 24,
            seed: 0xC0FFEE,
        }
    }
}

/// The sparsity-exploitation mode of an architecture, i.e. which operand
/// streams may skip zeros and with what borrowing windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparsityMode {
    /// Dense baseline: no skipping at all.
    Dense,
    /// `Sparse.A(da1, da2, da3)`: on-the-fly activation skipping.
    SparseA {
        /// Borrowing window for matrix A.
        win: BorrowWindow,
        /// Rotation-based shuffling on/off.
        shuffle: bool,
    },
    /// `Sparse.B(db1, db2, db3)`: preprocessed weight skipping.
    SparseB {
        /// Borrowing window for matrix B.
        win: BorrowWindow,
        /// Rotation-based shuffling on/off.
        shuffle: bool,
    },
    /// `Sparse.AB(da1..da3, db1..db3)`: dual sparsity (§IV-A).
    SparseAB {
        /// Borrowing window for matrix A.
        a: BorrowWindow,
        /// Borrowing window for matrix B.
        b: BorrowWindow,
        /// Rotation-based shuffling on/off.
        shuffle: bool,
    },
    /// SparTen-style MAC architecture (no K-unrolling, deep per-PE
    /// buffers); used for the SOTA comparison points.
    SparTen {
        /// Whether activation zeros are skipped.
        a_sparse: bool,
        /// Whether weight zeros are skipped.
        b_sparse: bool,
    },
}

impl SparsityMode {
    /// Whether this mode preprocesses and compresses matrix B in SRAM.
    pub fn compresses_b(&self) -> bool {
        matches!(
            self,
            SparsityMode::SparseB { .. }
                | SparsityMode::SparseAB { .. }
                | SparsityMode::SparTen { b_sparse: true, .. }
        )
    }
}

/// Full simulator configuration.
///
/// `Eq`/`Hash` (via [`BwPolicy`]'s bit-pattern hashing) let whole
/// configurations key scenario caches — see `griffin_sweep`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimConfig {
    /// Core spatial unrolling `(K0, N0, M0)`.
    pub core: CoreDims,
    /// Arbitration priority.
    pub priority: Priority,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// SRAM/DRAM bandwidth policy.
    pub bw: BwPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            core: CoreDims::PAPER,
            priority: Priority::OwnFirst,
            fidelity: Fidelity::default(),
            bw: BwPolicy::Provisioned,
        }
    }
}

impl SimConfig {
    /// A configuration that simulates every tile exactly — slower, used
    /// by tests and spot checks.
    pub fn exact() -> Self {
        SimConfig {
            fidelity: Fidelity::Exact,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SimConfig::default();
        assert_eq!(c.core, CoreDims::PAPER);
        assert_eq!(c.priority, Priority::OwnFirst);
        assert!(matches!(c.fidelity, Fidelity::Sampled { .. }));
        assert_eq!(c.bw, BwPolicy::Provisioned);
    }

    #[test]
    fn compresses_b_flags() {
        assert!(!SparsityMode::Dense.compresses_b());
        assert!(!SparsityMode::SparseA {
            win: BorrowWindow::new(2, 1, 0),
            shuffle: true
        }
        .compresses_b());
        assert!(SparsityMode::SparseB {
            win: BorrowWindow::new(4, 0, 1),
            shuffle: true
        }
        .compresses_b());
        assert!(SparsityMode::SparseAB {
            a: BorrowWindow::new(2, 0, 0),
            b: BorrowWindow::new(2, 0, 1),
            shuffle: true
        }
        .compresses_b());
        assert!(SparsityMode::SparTen {
            a_sparse: true,
            b_sparse: true
        }
        .compresses_b());
        assert!(!SparsityMode::SparTen {
            a_sparse: true,
            b_sparse: false
        }
        .compresses_b());
    }

    #[test]
    fn exact_config_disables_sampling() {
        assert_eq!(SimConfig::exact().fidelity, Fidelity::Exact);
    }
}
