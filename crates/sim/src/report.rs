//! Simulation result types.

use griffin_tensor::shape::CoreDims;

/// Result of simulating one GEMM layer on one architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerReport {
    /// Dense baseline latency of the layer (cycles).
    pub dense_cycles: u64,
    /// Latency from the borrowing schedule alone (cycles).
    pub schedule_cycles: f64,
    /// Latency floor imposed by the bandwidth policy (cycles).
    pub bw_floor_cycles: f64,
    /// Final latency: `max(schedule, bandwidth floor)` (cycles).
    pub cycles: f64,
    /// Effectual operations executed.
    pub effectual_ops: f64,
    /// Ops executed by borrowing (non-own slot or lookahead).
    pub borrowed_ops: f64,
    /// Cycles in which some multiplier starved while work remained.
    pub starved_cycles: f64,
    /// Whether tile sampling was used (vs exact simulation).
    pub sampled: bool,
}

impl LayerReport {
    /// Speedup over the dense baseline (`dense / cycles`).
    pub fn speedup(&self) -> f64 {
        self.dense_cycles as f64 / self.cycles.max(1e-9)
    }

    /// Fraction of multiplier slots doing effectual work.
    pub fn utilization(&self, core: CoreDims) -> f64 {
        self.effectual_ops / (self.cycles.max(1e-9) * core.macs() as f64)
    }
}

/// Aggregated result of simulating a whole network (a list of layers).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkReport {
    /// Per-layer results, in layer order.
    pub layers: Vec<LayerReport>,
}

impl NetworkReport {
    /// Total cycles across all layers.
    pub fn cycles(&self) -> f64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total dense baseline cycles.
    pub fn dense_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.dense_cycles).sum()
    }

    /// End-to-end speedup over the dense baseline.
    pub fn speedup(&self) -> f64 {
        self.dense_cycles() as f64 / self.cycles().max(1e-9)
    }
}

/// Geometric mean of a sequence of positive values — the paper's
/// aggregation for speedups and efficiency metrics across benchmarks.
///
/// ```
/// use griffin_sim::report::geomean;
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of an empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(dense: u64, cycles: f64) -> LayerReport {
        LayerReport {
            dense_cycles: dense,
            schedule_cycles: cycles,
            bw_floor_cycles: 0.0,
            cycles,
            effectual_ops: 0.0,
            borrowed_ops: 0.0,
            starved_cycles: 0.0,
            sampled: false,
        }
    }

    #[test]
    fn layer_speedup() {
        assert!((report(100, 25.0).speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn network_aggregates_over_layers() {
        let net = NetworkReport {
            layers: vec![report(100, 50.0), report(300, 100.0)],
        };
        assert_eq!(net.dense_cycles(), 400);
        assert!((net.cycles() - 150.0).abs() < 1e-12);
        assert!((net.speedup() - 400.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_full_dense_run_is_one() {
        let core = CoreDims::PAPER;
        let mut r = report(10, 10.0);
        r.effectual_ops = 10.0 * core.macs() as f64;
        assert!((r.utilization(core) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 8.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "geomean of an empty slice")]
    fn geomean_empty_panics() {
        geomean(&[]);
    }
}
