//! Word-level op-grid construction from sparsity masks.
//!
//! The naive way to build an [`OpGrid`] is a predicate over the full
//! 4-D `(t, lane, row, col)` loop — one virtual call plus one bit test
//! per *dense* coordinate, i.e. `t_steps × K0 × spatial` work per tile
//! regardless of sparsity. These builders instead walk the packed
//! [`SparsityMask`] words directly ([`SparsityMask::for_each_set_in_row`])
//! so a tile costs one word load per 64 dense positions plus one
//! counting-sort scatter per *nonzero*, and they rebuild into an
//! existing grid's CSR arrays so the per-tile loop allocates nothing.
//!
//! Both builders produce exactly the grid the equivalent
//! `OpGrid::from_fn` predicate over `TileView::is_nonzero` produces
//! (asserted by differential tests): mask traversal is `k`-ascending,
//! so every CSR column receives its op times already sorted, and tile
//! edges keep their zero-padding semantics because the word iterator
//! clips to the mask.

use griffin_tensor::block::{ATileView, BTileView, TileView};

use crate::engine::OpGrid;
use crate::shuffle::LaneMap;

/// Rebuilds `grid` as the op grid of one B-side tile column: ops are the
/// nonzeros of B over `(t, lane, 1, n_local)`, read through the shuffle
/// lane map.
///
/// `span` is a reusable word cache (one `u64` per reduction row holding
/// the tile's `N0`-wide bit span) so the mask is only extracted once for
/// the two CSR passes; pass the scratch's buffer and it never
/// reallocates at steady state.
pub fn build_b_grid(grid: &mut OpGrid, span: &mut Vec<u64>, view: &BTileView<'_>, lanes: LaneMap) {
    let core = view.core();
    let mask = view.mask();
    let n0 = core.n0;
    let n_base = view.n_base();
    grid.reset_dims(view.t_steps(), core.k0, 1, n0);

    // Iterate `(t, src_lane)` explicitly — `k = t·K0 + src_lane` —
    // instead of dividing every mask row index by the (runtime) K0.
    let t_steps = view.t_steps();
    let rows_k = mask.rows();
    if n0 <= 64 {
        // Fast path: the whole spatial span of one reduction row fits in
        // a word; extract it once, count and scatter by trailing zeros.
        span.clear();
        for t in 0..t_steps {
            for src in 0..core.k0 {
                let k = t * core.k0 + src;
                let bits = if k < rows_k {
                    mask.span_bits(k, n_base, n0)
                } else {
                    0
                };
                span.push(bits);
                grid.t_counts[t] += bits.count_ones();
                let base = lanes.dest_lane(src, t) * n0;
                let mut w = bits;
                while w != 0 {
                    grid.col_off[base + w.trailing_zeros() as usize] += 1;
                    w &= w - 1;
                }
            }
        }
        grid.finish_counts();
        // Pass 2: scatter from the cached spans. `t` ascends, so each
        // column's times stay sorted.
        let mut i = 0;
        for t in 0..t_steps {
            for src in 0..core.k0 {
                let base = lanes.dest_lane(src, t) * n0;
                let mut w = span[i];
                i += 1;
                while w != 0 {
                    grid.push_counted(base + w.trailing_zeros() as usize, t as u32);
                    w &= w - 1;
                }
            }
        }
    } else {
        for t in 0..t_steps {
            for src in 0..core.k0 {
                let lane = lanes.dest_lane(src, t);
                mask.for_each_set_in_row(t * core.k0 + src, n_base, n_base + n0, |n| {
                    grid.col_off[lane * n0 + (n - n_base)] += 1;
                    grid.t_counts[t] += 1;
                });
            }
        }
        grid.finish_counts();
        for t in 0..t_steps {
            for src in 0..core.k0 {
                let lane = lanes.dest_lane(src, t);
                mask.for_each_set_in_row(t * core.k0 + src, n_base, n_base + n0, |n| {
                    grid.push_counted(lane * n0 + (n - n_base), t as u32);
                });
            }
        }
    }
    grid.finish_fill();
}

/// Rebuilds one grid per view as the op grids of K seed-variant B-side
/// tile columns, sharing a single `(t, src)` walk across the batch.
///
/// All views must agree on the core and the time extent (seed-variant
/// masks of one layer shape do by construction). Compared with K
/// independent [`build_b_grid`] calls this hoists the loop control and
/// the `dest_lane` shuffle lookup out of the per-plane work, and keeps
/// all K span words of one reduction row adjacent in `span` (layout
/// `row * K + plane`) so the two CSR passes stay word-parallel across
/// the batch. Each produced grid is **identical** to what the
/// single-mask builder produces for its view (asserted by differential
/// tests), which is what lets `run_batch` stay byte-compatible with K
/// independent `run_with` calls.
pub fn build_b_grids(
    grids: &mut [OpGrid],
    span: &mut Vec<u64>,
    views: &[BTileView<'_>],
    lanes: LaneMap,
) {
    assert_eq!(grids.len(), views.len(), "one grid per view");
    let Some(first) = views.first() else { return };
    let core = first.core();
    let n0 = core.n0;
    let t_steps = first.t_steps();
    for v in views {
        assert_eq!(v.core(), core, "batched views must share the core");
        assert_eq!(
            v.t_steps(),
            t_steps,
            "batched views must share the time extent"
        );
    }
    if n0 > 64 {
        // The span-word fast path needs the whole spatial extent in one
        // word; fall back to per-plane builds beyond it.
        for (g, v) in grids.iter_mut().zip(views) {
            build_b_grid(g, span, v, lanes);
        }
        return;
    }
    let planes = views.len();
    for g in grids.iter_mut() {
        g.reset_dims(t_steps, core.k0, 1, n0);
    }
    span.clear();
    for t in 0..t_steps {
        for src in 0..core.k0 {
            let k = t * core.k0 + src;
            let base = lanes.dest_lane(src, t) * n0;
            for (g, v) in grids.iter_mut().zip(views) {
                let bits = if k < v.mask().rows() {
                    v.mask().span_bits(k, v.n_base(), n0)
                } else {
                    0
                };
                span.push(bits);
                g.t_counts[t] += bits.count_ones();
                let mut w = bits;
                while w != 0 {
                    g.col_off[base + w.trailing_zeros() as usize] += 1;
                    w &= w - 1;
                }
            }
        }
    }
    for g in grids.iter_mut() {
        g.finish_counts();
    }
    let mut i = 0;
    for t in 0..t_steps {
        for src in 0..core.k0 {
            let base = lanes.dest_lane(src, t) * n0;
            for g in grids.iter_mut() {
                let mut w = span[i];
                i += 1;
                while w != 0 {
                    g.push_counted(base + w.trailing_zeros() as usize, t as u32);
                    w &= w - 1;
                }
            }
        }
    }
    debug_assert_eq!(i, t_steps * core.k0 * planes);
    for g in grids.iter_mut() {
        g.finish_fill();
    }
}

/// Rebuilds `grid` as the op grid of one A-side tile row: ops are the
/// nonzeros of A over `(t, lane, m_local, 1)`.
///
/// `span` is the same reusable word cache as in [`build_b_grid`]: pass 1
/// records each `(row, t)` span word so pass 2 scatters from the cache
/// instead of re-extracting every span from the mask.
pub fn build_a_grid(grid: &mut OpGrid, span: &mut Vec<u64>, view: &ATileView<'_>, lanes: LaneMap) {
    let core = view.core();
    let mask = view.mask();
    let m0 = core.m0;
    let m_base = view.m_base();
    grid.reset_dims(view.t_steps(), core.k0, m0, 1);

    // A mask row is one PE row's full reduction axis: bit `k` is time
    // step `k / K0`, lane `k % K0` (through the shuffle map). Walk it as
    // K0-wide spans per time step so no index ever needs dividing.
    let t_steps = view.t_steps();
    if core.k0 <= 64 {
        span.clear();
        for r in 0..m0 {
            for t in 0..t_steps {
                let w = mask.span_bits(m_base + r, t * core.k0, core.k0);
                span.push(w);
                grid.t_counts[t] += w.count_ones();
                let mut w = w;
                while w != 0 {
                    let lane = lanes.dest_lane(w.trailing_zeros() as usize, t);
                    grid.col_off[lane * m0 + r] += 1;
                    w &= w - 1;
                }
            }
        }
        grid.finish_counts();
        // Pass 2: scatter from the cached spans; `t` ascends within each
        // mask row, so each column (which draws from exactly one mask
        // row) stays sorted.
        let mut i = 0;
        for r in 0..m0 {
            for t in 0..t_steps {
                let mut w = span[i];
                i += 1;
                while w != 0 {
                    let lane = lanes.dest_lane(w.trailing_zeros() as usize, t);
                    grid.push_counted(lane * m0 + r, t as u32);
                    w &= w - 1;
                }
            }
        }
    } else {
        for r in 0..m0 {
            mask.for_each_set_in_row(m_base + r, 0, mask.cols(), |k| {
                let t = k / core.k0;
                let lane = lanes.dest_lane(k % core.k0, t);
                grid.col_off[lane * m0 + r] += 1;
                grid.t_counts[t] += 1;
            });
        }
        grid.finish_counts();
        for r in 0..m0 {
            mask.for_each_set_in_row(m_base + r, 0, mask.cols(), |k| {
                let t = k / core.k0;
                let lane = lanes.dest_lane(k % core.k0, t);
                grid.push_counted(lane * m0 + r, t as u32);
            });
        }
    }
    grid.finish_fill();
}

/// Batched counterpart of [`build_a_grid`]: one grid per A-side view,
/// sharing the `(row, t)` walk across K seed-variant masks. Same
/// contract as [`build_b_grids`] — identical output to K independent
/// single-mask builds, falling back to them when the reduction span
/// exceeds one word.
pub fn build_a_grids(
    grids: &mut [OpGrid],
    span: &mut Vec<u64>,
    views: &[ATileView<'_>],
    lanes: LaneMap,
) {
    assert_eq!(grids.len(), views.len(), "one grid per view");
    let Some(first) = views.first() else { return };
    let core = first.core();
    let m0 = core.m0;
    let t_steps = first.t_steps();
    for v in views {
        assert_eq!(v.core(), core, "batched views must share the core");
        assert_eq!(
            v.t_steps(),
            t_steps,
            "batched views must share the time extent"
        );
    }
    if core.k0 > 64 {
        for (g, v) in grids.iter_mut().zip(views) {
            build_a_grid(g, span, v, lanes);
        }
        return;
    }
    let planes = views.len();
    for g in grids.iter_mut() {
        g.reset_dims(t_steps, core.k0, m0, 1);
    }
    span.clear();
    for r in 0..m0 {
        for t in 0..t_steps {
            for (g, v) in grids.iter_mut().zip(views) {
                let w = v.mask().span_bits(v.m_base() + r, t * core.k0, core.k0);
                span.push(w);
                g.t_counts[t] += w.count_ones();
                let mut w = w;
                while w != 0 {
                    let lane = lanes.dest_lane(w.trailing_zeros() as usize, t);
                    g.col_off[lane * m0 + r] += 1;
                    w &= w - 1;
                }
            }
        }
    }
    for g in grids.iter_mut() {
        g.finish_counts();
    }
    let mut i = 0;
    for r in 0..m0 {
        for t in 0..t_steps {
            for g in grids.iter_mut() {
                let mut w = span[i];
                i += 1;
                while w != 0 {
                    let lane = lanes.dest_lane(w.trailing_zeros() as usize, t);
                    g.push_counted(lane * m0 + r, t as u32);
                    w &= w - 1;
                }
            }
        }
    }
    debug_assert_eq!(i, m0 * t_steps * planes);
    for g in grids.iter_mut() {
        g.finish_fill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_tensor::block::TileCoord;
    use griffin_tensor::gen::TensorGen;
    use griffin_tensor::mask::SparsityMask;
    use griffin_tensor::shape::CoreDims;

    fn from_fn_b(view: &BTileView<'_>, lanes: LaneMap, n0: usize, k0: usize) -> OpGrid {
        OpGrid::from_fn(view.t_steps(), k0, 1, n0, |t, lane, _, col| {
            view.is_nonzero(TileCoord {
                t,
                lane: lanes.source_lane(lane, t),
                s: col,
            })
        })
    }

    fn from_fn_a(view: &ATileView<'_>, lanes: LaneMap, m0: usize, k0: usize) -> OpGrid {
        OpGrid::from_fn(view.t_steps(), k0, m0, 1, |t, lane, row, _| {
            view.is_nonzero(TileCoord {
                t,
                lane: lanes.source_lane(lane, t),
                s: row,
            })
        })
    }

    #[test]
    fn b_builder_matches_predicate_build() {
        let core = CoreDims::PAPER;
        // Ragged K (not a multiple of K0) and ragged N tail tile.
        let mask = TensorGen::seeded(7).bernoulli_mask(3 * core.k0 + 5, 2 * core.n0 - 3, 0.3);
        let mut grid = OpGrid::default();
        let mut span = Vec::new();
        for shuffle in [false, true] {
            let lanes = LaneMap::from_flag(shuffle);
            for n_tile in 0..2 {
                let view = BTileView::new(&mask, core, n_tile * core.n0);
                build_b_grid(&mut grid, &mut span, &view, lanes);
                let want = from_fn_b(&view, lanes, core.n0, core.k0);
                assert_eq!(grid, want, "shuffle={shuffle} n_tile={n_tile}");
            }
        }
    }

    #[test]
    fn a_builder_matches_predicate_build() {
        let core = CoreDims::PAPER;
        // Ragged M (partial last tile row) and ragged K.
        let mask = TensorGen::seeded(9).bernoulli_mask(2 * core.m0 - 1, 2 * core.k0 + 9, 0.4);
        let mut grid = OpGrid::default();
        let mut span = Vec::new();
        for shuffle in [false, true] {
            let lanes = LaneMap::from_flag(shuffle);
            for m_tile in 0..2 {
                let view = ATileView::new(&mask, core, m_tile * core.m0);
                build_a_grid(&mut grid, &mut span, &view, lanes);
                let want = from_fn_a(&view, lanes, core.m0, core.k0);
                assert_eq!(grid, want, "shuffle={shuffle} m_tile={m_tile}");
            }
        }
    }

    #[test]
    fn batched_b_builder_matches_independent_builds() {
        let core = CoreDims::PAPER;
        // Three seed-variant masks of one ragged layer shape.
        let masks: Vec<SparsityMask> = (1..=3)
            .map(|s| TensorGen::seeded(s).bernoulli_mask(3 * core.k0 + 5, 2 * core.n0 - 3, 0.3))
            .collect();
        for shuffle in [false, true] {
            let lanes = LaneMap::from_flag(shuffle);
            for n_tile in 0..2 {
                let views: Vec<BTileView<'_>> = masks
                    .iter()
                    .map(|m| BTileView::new(m, core, n_tile * core.n0))
                    .collect();
                let mut grids = vec![OpGrid::default(); views.len()];
                let mut span = Vec::new();
                build_b_grids(&mut grids, &mut span, &views, lanes);
                for (g, v) in grids.iter().zip(&views) {
                    let mut want = OpGrid::default();
                    build_b_grid(&mut want, &mut span, v, lanes);
                    assert_eq!(g, &want, "shuffle={shuffle} n_tile={n_tile}");
                }
            }
        }
    }

    #[test]
    fn batched_a_builder_matches_independent_builds() {
        let core = CoreDims::PAPER;
        let masks: Vec<SparsityMask> = (4..=6)
            .map(|s| TensorGen::seeded(s).bernoulli_mask(2 * core.m0 - 1, 2 * core.k0 + 9, 0.4))
            .collect();
        for shuffle in [false, true] {
            let lanes = LaneMap::from_flag(shuffle);
            for m_tile in 0..2 {
                let views: Vec<ATileView<'_>> = masks
                    .iter()
                    .map(|m| ATileView::new(m, core, m_tile * core.m0))
                    .collect();
                let mut grids = vec![OpGrid::default(); views.len()];
                let mut span = Vec::new();
                build_a_grids(&mut grids, &mut span, &views, lanes);
                for (g, v) in grids.iter().zip(&views) {
                    let mut want = OpGrid::default();
                    build_a_grid(&mut want, &mut span, v, lanes);
                    assert_eq!(g, &want, "shuffle={shuffle} m_tile={m_tile}");
                }
            }
        }
    }

    #[test]
    fn batched_builders_accept_empty_and_single_batches() {
        let core = CoreDims::PAPER;
        let mut span = Vec::new();
        build_b_grids(&mut [], &mut span, &[], LaneMap::Rotate);
        let mask = TensorGen::seeded(8).bernoulli_mask(2 * core.k0, core.n0, 0.25);
        let views = [BTileView::new(&mask, core, 0)];
        let mut grids = [OpGrid::default()];
        build_b_grids(&mut grids, &mut span, &views, LaneMap::Rotate);
        let mut want = OpGrid::default();
        build_b_grid(&mut want, &mut span, &views[0], LaneMap::Rotate);
        assert_eq!(grids[0], want);
    }

    #[test]
    fn builders_reuse_one_grid_across_tile_kinds() {
        let core = CoreDims::PAPER;
        let b_mask = SparsityMask::from_fn(2 * core.k0, core.n0, |r, c| (r + c) % 3 == 0);
        let a_mask = SparsityMask::from_fn(core.m0, 2 * core.k0, |r, c| (r * 5 + c) % 4 == 0);
        let mut grid = OpGrid::default();
        let mut span = Vec::new();
        let b_view = BTileView::new(&b_mask, core, 0);
        build_b_grid(&mut grid, &mut span, &b_view, LaneMap::Rotate);
        assert_eq!(grid.total_ops(), b_mask.nnz());
        let a_view = ATileView::new(&a_mask, core, 0);
        build_a_grid(&mut grid, &mut span, &a_view, LaneMap::Rotate);
        assert_eq!(grid.total_ops(), a_mask.nnz());
        assert_eq!(grid, from_fn_a(&a_view, LaneMap::Rotate, core.m0, core.k0));
    }
}
