//! SRAM and DRAM bandwidth modelling.
//!
//! The paper's baseline provisions exactly one dense tile of each operand
//! per cycle: 51.2 GB/s for ASRAM (= `M0·K0` = 64 bytes/cycle at 800 MHz)
//! and 204.8 GB/s for BSRAM (= `K0·N0` = 256 bytes/cycle), plus 50 GB/s of
//! DRAM "which is enough to avoid any performance drop". §V notes that to
//! exploit a sparsity speedup of `s` the SRAM bandwidth must scale by `s`
//! — the evaluated sparse designs are provisioned accordingly (and pay for
//! it in SRAM power, visible in Table VII). This module provides both that
//! *provisioned* policy and a *fixed* policy that exposes the bandwidth
//! wall, used by the bandwidth-sensitivity example.

use griffin_tensor::shape::{CoreDims, GemmShape};

/// Bandwidth policy for a simulation run.
///
/// `Eq`/`Hash` compare the bit patterns of the byte-per-cycle budgets
/// (they are configuration constants, never NaN), so policies can key
/// result caches — see `griffin_sweep`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BwPolicy {
    /// SRAM bandwidth scales with the achieved speedup (the paper's
    /// evaluation setting): the schedule is never bandwidth-bound.
    Provisioned,
    /// Fixed byte-per-cycle budgets; the layer latency is floored by the
    /// traffic each resource must move.
    Fixed {
        /// ASRAM read bandwidth in bytes/cycle.
        a_bytes_per_cycle: f64,
        /// BSRAM read bandwidth in bytes/cycle.
        b_bytes_per_cycle: f64,
        /// DRAM bandwidth in bytes/cycle.
        dram_bytes_per_cycle: f64,
    },
}

impl Eq for BwPolicy {}

impl std::hash::Hash for BwPolicy {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            BwPolicy::Provisioned => state.write_u8(0),
            BwPolicy::Fixed {
                a_bytes_per_cycle,
                b_bytes_per_cycle,
                dram_bytes_per_cycle,
            } => {
                state.write_u8(1);
                // `x + 0.0` collapses -0.0 onto +0.0 so the Hash/Eq
                // contract holds (derived PartialEq says 0.0 == -0.0).
                state.write_u64((a_bytes_per_cycle + 0.0).to_bits());
                state.write_u64((b_bytes_per_cycle + 0.0).to_bits());
                state.write_u64((dram_bytes_per_cycle + 0.0).to_bits());
            }
        }
    }
}

impl BwPolicy {
    /// The paper's baseline fixed budgets at 800 MHz:
    /// ASRAM 64 B/cy (51.2 GB/s), BSRAM 256 B/cy (204.8 GB/s),
    /// DRAM 62.5 B/cy (50 GB/s).
    pub fn paper_baseline() -> Self {
        BwPolicy::Fixed {
            a_bytes_per_cycle: 64.0,
            b_bytes_per_cycle: 256.0,
            dram_bytes_per_cycle: 62.5,
        }
    }

    /// The paper's budgets scaled by a provisioning factor (models a
    /// sparse design built for `scale×` speedup).
    pub fn paper_scaled(scale: f64) -> Self {
        BwPolicy::Fixed {
            a_bytes_per_cycle: 64.0 * scale,
            b_bytes_per_cycle: 256.0 * scale,
            dram_bytes_per_cycle: 62.5,
        }
    }
}

/// On-chip and off-chip traffic of one layer under the output-stationary
/// dataflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerTraffic {
    /// ASRAM bytes read (A tile rows re-streamed once per output-tile
    /// column).
    pub a_sram_bytes: f64,
    /// BSRAM bytes read (B tiles re-streamed once per output-tile row);
    /// already scaled by the compression factor for preprocessed-B
    /// architectures.
    pub b_sram_bytes: f64,
    /// DRAM bytes moved: each operand loaded once, outputs written once.
    pub dram_bytes: f64,
}

/// Computes the traffic of a layer.
///
/// `b_bytes_per_dense_element` is 1.0 for dense storage or the
/// compressed-footprint ratio from
/// [`griffin_tensor::compress::CompressedB::bytes_per_dense_element`].
pub fn layer_traffic(
    shape: GemmShape,
    core: CoreDims,
    b_bytes_per_dense_element: f64,
) -> LayerTraffic {
    let t = shape.tiles(core);
    let (mt, nt, kt) = (t.mt as f64, t.nt as f64, t.kt as f64);
    let a_tile = (core.m0 * core.k0) as f64;
    let b_tile = (core.k0 * core.n0) as f64;
    LayerTraffic {
        a_sram_bytes: mt * nt * kt * a_tile,
        b_sram_bytes: mt * nt * kt * b_tile * b_bytes_per_dense_element,
        dram_bytes: (shape.m * shape.k) as f64
            + (shape.k * shape.n) as f64 * b_bytes_per_dense_element
            + (shape.m * shape.n) as f64,
    }
}

/// Minimum layer latency in cycles imposed by the bandwidth policy
/// (0 when provisioned).
pub fn bw_floor_cycles(traffic: LayerTraffic, policy: BwPolicy) -> f64 {
    match policy {
        BwPolicy::Provisioned => 0.0,
        BwPolicy::Fixed {
            a_bytes_per_cycle,
            b_bytes_per_cycle,
            dram_bytes_per_cycle,
        } => {
            let a = traffic.a_sram_bytes / a_bytes_per_cycle;
            let b = traffic.b_sram_bytes / b_bytes_per_cycle;
            let d = traffic.dram_bytes / dram_bytes_per_cycle;
            a.max(b).max(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> GemmShape {
        GemmShape::new(64, 256, 128).unwrap()
    }

    #[test]
    fn provisioned_never_floors() {
        let t = layer_traffic(shape(), CoreDims::PAPER, 1.0);
        assert_eq!(bw_floor_cycles(t, BwPolicy::Provisioned), 0.0);
    }

    #[test]
    fn baseline_budgets_exactly_cover_dense_tiles() {
        // With the paper's budgets, the SRAM floor equals the dense cycle
        // count: one A tile (64 B) and one B tile (256 B) per cycle.
        let s = shape();
        let t = layer_traffic(s, CoreDims::PAPER, 1.0);
        let floor = bw_floor_cycles(t, BwPolicy::paper_baseline());
        let dense = s.dense_cycles(CoreDims::PAPER) as f64;
        assert!(
            (floor - dense).abs() < 1.0,
            "floor {floor} vs dense {dense}"
        );
    }

    #[test]
    fn compressed_b_reduces_b_traffic() {
        let dense = layer_traffic(shape(), CoreDims::PAPER, 1.0);
        let compressed = layer_traffic(shape(), CoreDims::PAPER, 0.3);
        assert!(compressed.b_sram_bytes < dense.b_sram_bytes);
        assert!(compressed.dram_bytes < dense.dram_bytes);
        assert_eq!(compressed.a_sram_bytes, dense.a_sram_bytes);
    }

    #[test]
    fn scaled_budget_lowers_the_floor() {
        let t = layer_traffic(shape(), CoreDims::PAPER, 1.0);
        let base = bw_floor_cycles(t, BwPolicy::paper_baseline());
        let scaled = bw_floor_cycles(t, BwPolicy::paper_scaled(4.0));
        assert!(scaled < base);
        assert!(scaled >= base / 4.0 - 1.0);
    }

    #[test]
    fn dram_floor_binds_for_tiny_compute() {
        // A 1-cycle GEMM still has to move its operands over DRAM.
        let s = GemmShape::new(4, 16, 16).unwrap();
        let t = layer_traffic(s, CoreDims::PAPER, 1.0);
        let floor = bw_floor_cycles(t, BwPolicy::paper_baseline());
        assert!(floor > 1.0);
    }
}
