//! Borrowing windows along the blocked tensor dimensions.
//!
//! Definitions III.1, III.2 and IV.1 of the paper: an architecture
//! `Sparse.X(d1, d2, d3)` may replace a zero operand at blocked coordinate
//! `(x1, x2, x3)` with a nonzero operand at `(x1+Δ1, x2+Δ2, x3+Δ3)` for
//! any `0 ≤ Δi ≤ di`. Dimension 1 is time (future reduction steps),
//! dimension 2 is the lane inside the dot-product unit, dimension 3 is
//! the neighbouring PE (rows for A, columns for B).

/// Maximum borrowing distances `(d1, d2, d3)` for one operand matrix.
///
/// ```
/// use griffin_sim::window::BorrowWindow;
/// let w = BorrowWindow::new(4, 0, 1); // the paper's Sparse.B* routing
/// assert_eq!(w.candidates(), 5 * 1 * 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BorrowWindow {
    /// Max distance along time (`d1` future reduction steps).
    pub d1: usize,
    /// Max distance along the lane dimension (`d2`).
    pub d2: usize,
    /// Max distance along the spatial PE dimension (`d3`).
    pub d3: usize,
}

impl BorrowWindow {
    /// Creates a window from the three distances.
    pub const fn new(d1: usize, d2: usize, d3: usize) -> Self {
        BorrowWindow { d1, d2, d3 }
    }

    /// The zero window: no borrowing in any dimension (dense behaviour).
    pub const ZERO: BorrowWindow = BorrowWindow::new(0, 0, 0);

    /// Number of candidate positions a zero slot can borrow from,
    /// `(1+d1)(1+d2)(1+d3)` (including the slot itself).
    pub fn candidates(&self) -> usize {
        (1 + self.d1) * (1 + self.d2) * (1 + self.d3)
    }

    /// Whether this window permits any borrowing at all.
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }
}

impl std::fmt::Display for BorrowWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{},{})", self.d1, self.d2, self.d3)
    }
}

/// The effective 4-D scheduling window of a configuration, combining the
/// A-side and B-side [`BorrowWindow`]s per §IV-A of the paper:
///
/// * time buffer depth `L = (1 + da1) · (1 + db1)` entries,
/// * lane reach `da2 + db2`,
/// * spatial reach `da3` along PE rows and `db3` along PE columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EffectiveWindow {
    /// Number of time rows visible to the scheduler (`≥ 1`).
    pub depth: usize,
    /// Lane displacement reach.
    pub lane: usize,
    /// Spatial reach along PE rows (matrix A side).
    pub rows: usize,
    /// Spatial reach along PE columns (matrix B side).
    pub cols: usize,
}

impl EffectiveWindow {
    /// Window of a `Sparse.A(da1,da2,da3)` architecture: scheduling domain
    /// is the nonzeros of A over (time, lane, PE row).
    pub fn for_a(a: BorrowWindow) -> Self {
        EffectiveWindow {
            depth: 1 + a.d1,
            lane: a.d2,
            rows: a.d3,
            cols: 0,
        }
    }

    /// Window of a `Sparse.B(db1,db2,db3)` architecture: scheduling domain
    /// is the nonzeros of B over (time, lane, PE column).
    pub fn for_b(b: BorrowWindow) -> Self {
        EffectiveWindow {
            depth: 1 + b.d1,
            lane: b.d2,
            rows: 0,
            cols: b.d3,
        }
    }

    /// Combined window of a `Sparse.AB` architecture (§IV-A): ABUF depth
    /// `L = (1+da1)(1+db1)`, lane reach `da2 + db2`, spatial reach
    /// `(da3, db3)`.
    pub fn for_ab(a: BorrowWindow, b: BorrowWindow) -> Self {
        EffectiveWindow {
            depth: (1 + a.d1) * (1 + b.d1),
            lane: a.d2 + b.d2,
            rows: a.d3,
            cols: b.d3,
        }
    }

    /// The dense window: one row deep, no reach anywhere.
    pub fn dense() -> Self {
        EffectiveWindow {
            depth: 1,
            lane: 0,
            rows: 0,
            cols: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_count() {
        assert_eq!(BorrowWindow::ZERO.candidates(), 1);
        assert_eq!(BorrowWindow::new(1, 1, 0).candidates(), 4);
        assert_eq!(BorrowWindow::new(2, 0, 1).candidates(), 6);
    }

    #[test]
    fn display_format() {
        assert_eq!(BorrowWindow::new(4, 0, 1).to_string(), "(4,0,1)");
    }

    #[test]
    fn effective_window_single_sided() {
        let wa = EffectiveWindow::for_a(BorrowWindow::new(2, 1, 1));
        assert_eq!(
            wa,
            EffectiveWindow {
                depth: 3,
                lane: 1,
                rows: 1,
                cols: 0
            }
        );
        let wb = EffectiveWindow::for_b(BorrowWindow::new(4, 0, 1));
        assert_eq!(
            wb,
            EffectiveWindow {
                depth: 5,
                lane: 0,
                rows: 0,
                cols: 1
            }
        );
    }

    #[test]
    fn effective_window_dual_matches_paper_abuf_depth() {
        // Sparse.AB(2,0,0,2,0,1): the paper says 9-entry ABUF, 3-entry BBUF.
        let w = EffectiveWindow::for_ab(BorrowWindow::new(2, 0, 0), BorrowWindow::new(2, 0, 1));
        assert_eq!(w.depth, 9);
        assert_eq!(w.lane, 0);
        assert_eq!(w.rows, 0);
        assert_eq!(w.cols, 1);
    }

    #[test]
    fn dense_window_is_unit() {
        let w = EffectiveWindow::dense();
        assert_eq!(w.depth, 1);
        assert_eq!((w.lane, w.rows, w.cols), (0, 0, 0));
    }
}
