//! Cycle-accurate borrowing simulator for the Griffin accelerator family.
//!
//! The Griffin paper (HPCA 2022) models every sparse architecture —
//! `Sparse.A(da1,da2,da3)`, `Sparse.B(db1,db2,db3)` and
//! `Sparse.AB(da1..db3)` — by *how far in time and space a multiplier can
//! borrow a nonzero operation to replace a zero one*. This crate is the
//! executable form of that model:
//!
//! * [`window`] — borrowing windows along the three blocked dimensions,
//! * [`shuffle`] — the rotation-based load-balance shuffler (§III),
//! * [`engine`] — the event-driven greedy borrowing scheduler over a
//!   flat CSR 4-D op grid (with the naive policy retained in
//!   [`engine::reference`] for differential testing),
//! * [`grid`] — word-level op-grid builders over mask bit words,
//! * [`scratch`] — reusable simulation buffers (the zero-alloc
//!   steady-state contract for sweep workers),
//! * [`single`] — `Sparse.A` / `Sparse.B` tile simulation,
//! * [`dual`] — `Sparse.AB` tile simulation (the 7-step pipeline of
//!   Figure 3),
//! * [`sparten`] — the SparTen-style per-MAC comparison model,
//! * [`bandwidth`] — SRAM/DRAM traffic bounds and stall accounting,
//! * [`pipeline`] — layer- and network-level simulation with
//!   output-synchronization semantics and sampled fidelity,
//! * [`layer`], [`config`], [`report`] — the I/O types.
//!
//! # Example
//!
//! ```
//! use griffin_sim::config::{Fidelity, SimConfig, SparsityMode};
//! use griffin_sim::layer::GemmLayer;
//! use griffin_sim::pipeline::simulate_layer;
//! use griffin_sim::window::BorrowWindow;
//! use griffin_tensor::gen::TensorGen;
//! use griffin_tensor::shape::GemmShape;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A pruned layer: 20%-dense weights, dense activations (DNN.B).
//! let shape = GemmShape::new(64, 1024, 64)?;
//! let mut gen = TensorGen::seeded(1);
//! let layer = GemmLayer::new(
//!     shape,
//!     gen.bernoulli_mask(shape.m, shape.k, 1.0),
//!     gen.bernoulli_mask(shape.k, shape.n, 0.2),
//! )?;
//!
//! // Sparse.B*(4,0,1) with shuffling — the paper's optimal weight-sparse design.
//! let mode = SparsityMode::SparseB { win: BorrowWindow::new(4, 0, 1), shuffle: true };
//! let report = simulate_layer(&layer, mode, &SimConfig::default());
//! assert!(report.speedup() > 2.0);
//! # Ok(())
//! # }
//! ```

pub mod bandwidth;
pub mod config;
pub mod dual;
pub mod engine;
pub mod functional;
pub mod grid;
pub mod layer;
pub mod pipeline;
pub mod report;
mod sampling;
pub mod scratch;
pub mod shuffle;
pub mod single;
pub mod sparten;
pub mod window;

pub use config::{Fidelity, Priority, SimConfig, SparsityMode};
pub use layer::GemmLayer;
pub use pipeline::{simulate_layer, simulate_layer_with, simulate_network, simulate_network_with};
pub use report::{LayerReport, NetworkReport};
pub use scratch::SimScratch;
pub use window::BorrowWindow;
