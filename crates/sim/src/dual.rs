//! Tile simulation for dual-sparse architectures (§IV-A, Figure 3).
//!
//! A `Sparse.AB(da1,da2,da3,db1,db2,db3)` core executes an operation
//! only when **both** operands are nonzero, through the seven-step
//! pipeline of Figure 3. Crucially, the two sides are *not* symmetric:
//!
//! 1. **Stage 1 — B preprocessing.** Matrix B is compacted offline with
//!    its own window `(db1, db2, db3)`; each stored nonzero carries
//!    metadata addressing one of `(1+db1)(1+db2)(1+db3)` source
//!    positions. B's relocation is fixed before A is known — this is
//!    why the paper's `Sparse.AB*` "downgrades to `Sparse.B(2,0,1)`"
//!    when A happens to be dense (Table III), and why Griffin's conf.B
//!    (which re-purposes the full nine-entry ABUF with 4-bit metadata)
//!    beats it on `DNN.B`.
//! 2. **Stage 2 — on-the-fly A skipping over the compressed stream.**
//!    The A zero-mask is filtered through B's metadata (steps 2–3);
//!    surviving pairs are arbitrated with the A window applied in
//!    *compressed time*: depth `1 + da1` compressed rows (the physical
//!    ABUF holds `L = (1+da1)(1+db1)` original rows to cover them),
//!    lane reach `da2`, PE-row reach `da3`.
//!
//! The layer latency sums over output-tile pairs; stage 1 is computed
//! once per output-tile column and reused across the sampled rows.

use griffin_tensor::block::{ATileView, BTileView, TileCoord, TileView};

use crate::config::SimConfig;
use crate::engine::{schedule_assign_with, schedule_with, Assignment, OpGrid};
use crate::grid::build_b_grid;
use crate::layer::GemmLayer;
use crate::sampling::sample_indices;
use crate::scratch::{GridKey, SimScratch};
use crate::shuffle::LaneMap;
use crate::single::ScheduleAccum;
use crate::window::{BorrowWindow, EffectiveWindow};

/// Stage-1 result for one output-tile column: the compressed B stream.
/// Owned (not scratch-backed) because it is cached across every row
/// tile of the column; the copy is amortized over all pairs.
struct CompressedColumn {
    /// Compacted stream length in compressed rows.
    t_steps: usize,
    /// Placements of every B nonzero.
    assigns: Vec<Assignment>,
}

/// Preprocesses one B tile column with the B window (stage 1).
fn preprocess_b(
    layer: &GemmLayer,
    cfg: &SimConfig,
    n_tile: usize,
    b_win: BorrowWindow,
    shuffle: bool,
    scratch: &mut SimScratch,
) -> CompressedColumn {
    let core = cfg.core;
    let lanes = LaneMap::from_flag(shuffle);
    let win = EffectiveWindow::for_b(b_win);
    let sched = if scratch.scope.is_some() {
        // Stage-1 grids share the cache with the single-sparse B path:
        // they are the same grids.
        let key = GridKey {
            layer: scratch.layer_idx,
            tile: n_tile as u32,
            rotate: shuffle,
            b_side: true,
            core,
            plane: scratch.plane,
        };
        if !scratch.grids.contains_key(&key) {
            let mut g = OpGrid::default();
            let view = BTileView::new(&layer.b, core, n_tile * core.n0);
            build_b_grid(&mut g, &mut scratch.span, &view, lanes);
            scratch.grids.insert(key, g);
        }
        schedule_assign_with(
            &scratch.grids[&key],
            win,
            cfg.priority,
            &mut scratch.sched,
            &mut scratch.assigns,
        )
    } else {
        let view = BTileView::new(&layer.b, core, n_tile * core.n0);
        build_b_grid(&mut scratch.grid, &mut scratch.span, &view, lanes);
        schedule_assign_with(
            &scratch.grid,
            win,
            cfg.priority,
            &mut scratch.sched,
            &mut scratch.assigns,
        )
    };
    CompressedColumn {
        t_steps: sched.cycles as usize,
        assigns: scratch.assigns.clone(),
    }
}

/// Simulates a layer on a `Sparse.AB` architecture.
pub fn simulate_sparse_ab(
    layer: &GemmLayer,
    a_win: BorrowWindow,
    b_win: BorrowWindow,
    shuffle: bool,
    cfg: &SimConfig,
) -> ScheduleAccum {
    simulate_sparse_ab_with(layer, a_win, b_win, shuffle, cfg, &mut SimScratch::new())
}

/// [`simulate_sparse_ab`] with caller-provided scratch: per tile pair
/// the stage-2 replay reuses the scratch's op list and grid, so only
/// the per-column stage-1 cache allocates.
pub fn simulate_sparse_ab_with(
    layer: &GemmLayer,
    a_win: BorrowWindow,
    b_win: BorrowWindow,
    shuffle: bool,
    cfg: &SimConfig,
    scratch: &mut SimScratch,
) -> ScheduleAccum {
    let core = cfg.core;
    let tiles = layer.shape.tiles(core);
    let lanes = LaneMap::from_flag(shuffle);
    let stage2_win = EffectiveWindow {
        depth: 1 + a_win.d1,
        lane: a_win.d2,
        rows: a_win.d3,
        cols: 0,
    };

    let pairs = tiles.mt * tiles.nt;
    let (picked, scale) = sample_indices(pairs, cfg.fidelity);

    // Stage 1 depends only on the column; cache it across row tiles.
    let mut compressed: Vec<Option<CompressedColumn>> = (0..tiles.nt).map(|_| None).collect();

    let mut acc = ScheduleAccum {
        sampled: scale > 1.0,
        ..Default::default()
    };
    for &pair in &picked {
        let m_tile = pair / tiles.nt;
        let n_tile = pair % tiles.nt;
        if compressed[n_tile].is_none() {
            compressed[n_tile] = Some(preprocess_b(layer, cfg, n_tile, b_win, shuffle, scratch));
        }
        let col = compressed[n_tile].as_ref().expect("column preprocessed");
        if col.t_steps == 0 {
            continue; // all-zero B column: nothing to execute
        }

        let a_view = ATileView::new(&layer.a, core, m_tile * core.m0);
        // Stage 2 ops: for every compressed B placement, the pair is
        // effectual on PE row m iff the A element at the *original*
        // coordinates is nonzero (steps 2-3: mask filtering).
        scratch.filtered.clear();
        for a in &col.assigns {
            let t = a.t as usize;
            let src_lane = lanes.source_lane(a.src.0, t);
            for m in 0..core.m0 {
                if a_view.is_nonzero(TileCoord {
                    t,
                    lane: src_lane,
                    s: m,
                }) {
                    scratch
                        .filtered
                        .push((a.cycle as usize, a.slot.0, m, a.slot.2));
                }
            }
        }

        scratch
            .grid2
            .rebuild_from_ops(col.t_steps, core.k0, core.m0, core.n0, &scratch.filtered);
        let s = schedule_with(&scratch.grid2, stage2_win, cfg.priority, &mut scratch.sched);
        acc.cycles += s.cycles as f64 * scale;
        acc.ops += s.executed as f64 * scale;
        acc.borrowed += s.borrowed as f64 * scale;
        acc.starved += s.starved_cycles as f64 * scale;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_tensor::shape::{CoreDims, GemmShape};

    fn cfg() -> SimConfig {
        SimConfig::exact()
    }

    fn layer(m: usize, k: usize, n: usize, da: f64, db: f64, seed: u64) -> GemmLayer {
        GemmLayer::with_densities(GemmShape::new(m, k, n).unwrap(), da, db, seed).unwrap()
    }

    /// The paper's optimal dual-sparse routing, Sparse.AB*(2,0,0,2,0,1).
    fn star() -> (BorrowWindow, BorrowWindow) {
        (BorrowWindow::new(2, 0, 0), BorrowWindow::new(2, 0, 1))
    }

    #[test]
    fn dense_layer_takes_dense_cycles() {
        let l = layer(8, 128, 32, 1.0, 1.0, 1);
        let (a, b) = star();
        let acc = simulate_sparse_ab(&l, a, b, true, &cfg());
        assert_eq!(acc.cycles, l.shape.dense_cycles(CoreDims::PAPER) as f64);
    }

    #[test]
    fn dense_a_lands_between_downgrade_and_conf_b() {
        // Table III / §VI-D: with dense activations, Sparse.AB*'s static
        // B window is stuck at (2,0,1); its runtime stage can recompact
        // within the 3-deep BBUF, so it beats the plain downgrade but
        // cannot reach Griffin's conf.B(8,0,1), whose *static* window
        // covers all nine ABUF entries.
        use crate::single::simulate_sparse_b;
        let l = layer(16, 512, 32, 1.0, 0.2, 2);
        let (a, b) = star();
        let dual = simulate_sparse_ab(&l, a, b, true, &cfg());
        let downgrade = simulate_sparse_b(&l, BorrowWindow::new(2, 0, 1), true, &cfg());
        let conf_b = simulate_sparse_b(&l, BorrowWindow::new(8, 0, 1), true, &cfg());
        assert!(
            dual.cycles <= downgrade.cycles,
            "dual {} should not lose to its downgrade {}",
            dual.cycles,
            downgrade.cycles
        );
        assert!(
            dual.cycles > conf_b.cycles,
            "dual {} should trail conf.B {} (the morphing gain)",
            dual.cycles,
            conf_b.cycles
        );
    }

    #[test]
    fn dual_sparsity_multiplies_gains() {
        // 50% activations x 20% weights -> 10% effectual ops. Averaged
        // over several mask seeds so the assertion tracks the expected
        // speedup rather than one realization of one RNG stream.
        let mut sum = 0.0;
        for seed in 1..=4 {
            let l = layer(16, 512, 32, 0.5, 0.2, seed);
            let dense = l.shape.dense_cycles(CoreDims::PAPER) as f64;
            let (a, b) = star();
            let acc = simulate_sparse_ab(&l, a, b, true, &cfg());
            let speedup = dense / acc.cycles;
            assert!(speedup <= 10.5, "speedup {speedup} beyond ideal");
            sum += speedup;
        }
        let mean = sum / 4.0;
        assert!(mean > 2.3, "mean speedup {mean}");
    }

    #[test]
    fn dual_beats_either_single_side_on_dual_sparse_input() {
        use crate::single::{simulate_sparse_a, simulate_sparse_b};
        let l = layer(16, 384, 32, 0.5, 0.2, 3);
        let (a, b) = star();
        let ab = simulate_sparse_ab(&l, a, b, true, &cfg());
        let only_b = simulate_sparse_b(&l, BorrowWindow::new(4, 0, 1), true, &cfg());
        let only_a = simulate_sparse_a(&l, BorrowWindow::new(2, 1, 0), true, &cfg());
        assert!(ab.cycles < only_b.cycles);
        assert!(ab.cycles < only_a.cycles);
    }

    #[test]
    fn effectual_ops_match_intersection_count() {
        let l = layer(8, 64, 16, 0.5, 0.5, 4);
        let (a, b) = star();
        let acc = simulate_sparse_ab(&l, a, b, false, &cfg());
        let mut expected = 0u64;
        for m in 0..l.shape.m {
            for k in 0..l.shape.k {
                if !l.a.get(m, k) {
                    continue;
                }
                for n in 0..l.shape.n {
                    if l.b.get(k, n) {
                        expected += 1;
                    }
                }
            }
        }
        assert_eq!(acc.ops as u64, expected);
    }

    #[test]
    fn sampling_approximates_exact_dual() {
        let l = layer(64, 256, 64, 0.5, 0.25, 5);
        let (a, b) = star();
        let exact = simulate_sparse_ab(&l, a, b, true, &SimConfig::exact());
        let sampled_cfg = SimConfig {
            fidelity: crate::config::Fidelity::Sampled { tiles: 16, seed: 3 },
            ..SimConfig::default()
        };
        let sampled = simulate_sparse_ab(&l, a, b, true, &sampled_cfg);
        let rel = (sampled.cycles - exact.cycles).abs() / exact.cycles;
        assert!(
            rel < 0.15,
            "sampled {} vs exact {} (rel {rel})",
            sampled.cycles,
            exact.cycles
        );
    }

    #[test]
    fn wider_b_window_helps_dual() {
        let l = layer(16, 512, 32, 0.5, 0.2, 6);
        let narrow = simulate_sparse_ab(
            &l,
            BorrowWindow::new(1, 0, 0),
            BorrowWindow::new(1, 0, 0),
            true,
            &cfg(),
        );
        let wide = simulate_sparse_ab(
            &l,
            BorrowWindow::new(2, 0, 0),
            BorrowWindow::new(4, 0, 2),
            true,
            &cfg(),
        );
        assert!(wide.cycles < narrow.cycles);
    }

    #[test]
    fn deeper_a_window_helps_on_sparse_a() {
        let l = layer(16, 512, 32, 0.4, 0.2, 7);
        let shallow = simulate_sparse_ab(
            &l,
            BorrowWindow::new(0, 0, 0),
            BorrowWindow::new(2, 0, 1),
            true,
            &cfg(),
        );
        let deep = simulate_sparse_ab(
            &l,
            BorrowWindow::new(3, 0, 0),
            BorrowWindow::new(2, 0, 1),
            true,
            &cfg(),
        );
        assert!(deep.cycles < shallow.cycles);
    }
}
