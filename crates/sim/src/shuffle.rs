//! Rotation-based load-balance shuffling (§III, "Load Balancing").
//!
//! Unstructured sparsity leaves nonzeros unevenly distributed across the
//! `K0` lanes of the dot-product units, which throttles borrowing windows
//! with small or zero lane reach. The paper's fine-grain remedy shuffles
//! both input matrices along their second blocked dimension *before*
//! preprocessing / buffering, and limits the shuffle to **local rotations
//! among four consecutive lanes** so the `K0×K0` crossbar decomposes into
//! `K0/4` cheap `4×4` crossbars.
//!
//! Our rotation amount is the time step modulo the group size, so a lane
//! that is persistently "hot" in the original layout spreads its work over
//! all four lanes of its group across time. Both A and B are shuffled with
//! the same permutation, so operand pairing (and therefore correctness) is
//! preserved — which is also why shuffling is a pure coordinate remap for
//! the scheduler.

/// Size of the local rotation group (`4×4` crossbars in the paper).
pub const GROUP: usize = 4;

/// Lane permutation applied at time step `t`: element in lane `lane` is
/// relocated to `shuffle_lane(lane, t)` within its 4-lane group.
///
/// ```
/// use griffin_sim::shuffle::shuffle_lane;
/// assert_eq!(shuffle_lane(0, 0), 0);
/// assert_eq!(shuffle_lane(0, 1), 1);
/// assert_eq!(shuffle_lane(3, 1), 0); // wraps inside the group
/// assert_eq!(shuffle_lane(4, 1), 5); // next group rotates independently
/// ```
pub fn shuffle_lane(lane: usize, t: usize) -> usize {
    let group = lane / GROUP;
    let within = lane % GROUP;
    group * GROUP + (within + t) % GROUP
}

/// Inverse of [`shuffle_lane`]: the original lane of the element that the
/// shuffler placed in `lane` at time step `t`.
pub fn unshuffle_lane(lane: usize, t: usize) -> usize {
    let group = lane / GROUP;
    let within = lane % GROUP;
    group * GROUP + (within + GROUP - t % GROUP) % GROUP
}

/// Lane mapper chosen by the `shuffle = on/off` architecture flag.
///
/// The scheduler asks "which *original* lane feeds shuffled lane `l` at
/// time `t`?"; with shuffling off that is the identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneMap {
    /// No shuffling.
    Identity,
    /// Local-rotation shuffling.
    Rotate,
}

impl LaneMap {
    /// Creates the mapper from the architecture's shuffle flag.
    pub fn from_flag(shuffle: bool) -> Self {
        if shuffle {
            LaneMap::Rotate
        } else {
            LaneMap::Identity
        }
    }

    /// Original lane feeding shuffled position `(t, lane)`.
    #[inline]
    pub fn source_lane(&self, lane: usize, t: usize) -> usize {
        match self {
            LaneMap::Identity => lane,
            LaneMap::Rotate => unshuffle_lane(lane, t),
        }
    }

    /// Inverse of [`source_lane`]: the shuffled position that original
    /// lane `src` lands in at time step `t`. Word-level grid builders
    /// walk the mask in original coordinates and use this forward map to
    /// place each nonzero in its scheduled lane.
    ///
    /// [`source_lane`]: LaneMap::source_lane
    #[inline]
    pub fn dest_lane(&self, src: usize, t: usize) -> usize {
        match self {
            LaneMap::Identity => src,
            LaneMap::Rotate => shuffle_lane(src, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_a_permutation_per_time_step() {
        for t in 0..8 {
            let mut seen = [false; 16];
            for lane in 0..16 {
                let s = shuffle_lane(lane, t);
                assert!(!seen[s], "lane collision at t={t}");
                seen[s] = true;
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn unshuffle_inverts_shuffle() {
        for t in 0..8 {
            for lane in 0..16 {
                assert_eq!(unshuffle_lane(shuffle_lane(lane, t), t), lane);
                assert_eq!(shuffle_lane(unshuffle_lane(lane, t), t), lane);
            }
        }
    }

    #[test]
    fn rotation_stays_within_group() {
        for t in 0..8 {
            for lane in 0..16 {
                assert_eq!(shuffle_lane(lane, t) / GROUP, lane / GROUP);
            }
        }
    }

    #[test]
    fn identity_map_is_identity() {
        let m = LaneMap::from_flag(false);
        for t in 0..4 {
            for lane in 0..16 {
                assert_eq!(m.source_lane(lane, t), lane);
            }
        }
    }

    #[test]
    fn rotation_spreads_a_hot_lane_over_its_group() {
        // An element stuck in lane 2 lands in lanes 2,3,0,1 over t=0..4.
        let m = LaneMap::from_flag(true);
        let positions: Vec<usize> = (0..4)
            .map(|t| (0..4).find(|&l| m.source_lane(l, t) == 2).unwrap())
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dest_lane_inverts_source_lane() {
        for map in [LaneMap::Identity, LaneMap::Rotate] {
            for t in 0..8 {
                for lane in 0..16 {
                    assert_eq!(map.dest_lane(map.source_lane(lane, t), t), lane);
                    assert_eq!(map.source_lane(map.dest_lane(lane, t), t), lane);
                }
            }
        }
    }

    #[test]
    fn period_is_group_size() {
        for lane in 0..16 {
            assert_eq!(shuffle_lane(lane, 0), shuffle_lane(lane, GROUP));
        }
    }
}
