//! Edge-case and failure-injection tests for the simulator: ragged
//! shapes, degenerate sparsity, and extreme windows.

use griffin_sim::config::{SimConfig, SparsityMode};
use griffin_sim::layer::GemmLayer;
use griffin_sim::pipeline::simulate_layer;
use griffin_sim::window::BorrowWindow;
use griffin_tensor::mask::SparsityMask;
use griffin_tensor::shape::{CoreDims, GemmShape};

fn all_modes() -> Vec<SparsityMode> {
    vec![
        SparsityMode::Dense,
        SparsityMode::SparseA {
            win: BorrowWindow::new(2, 1, 1),
            shuffle: true,
        },
        SparsityMode::SparseB {
            win: BorrowWindow::new(4, 0, 1),
            shuffle: true,
        },
        SparsityMode::SparseAB {
            a: BorrowWindow::new(2, 0, 0),
            b: BorrowWindow::new(2, 0, 1),
            shuffle: true,
        },
        SparsityMode::SparTen {
            a_sparse: true,
            b_sparse: true,
        },
    ]
}

#[test]
fn ragged_shapes_simulate_cleanly() {
    // Dimensions deliberately not multiples of (16, 16, 4).
    let cfg = SimConfig::exact();
    for (m, k, n) in [
        (1, 1, 1),
        (3, 17, 5),
        (5, 100, 33),
        (7, 9, 1),
        (63, 255, 17),
    ] {
        let l = GemmLayer::with_densities(GemmShape::new(m, k, n).unwrap(), 0.5, 0.3, 7).unwrap();
        for mode in all_modes() {
            let r = simulate_layer(&l, mode, &cfg);
            assert!(
                r.cycles >= 1.0,
                "({m},{k},{n}) {mode:?}: cycles {}",
                r.cycles
            );
            // Borrowing architectures never fall below the dense
            // schedule; SparTen is a different machine (scalar MACs, no
            // tiling) and may lose on tiny layers whose few outputs
            // cannot fill its MAC pool.
            if !matches!(mode, SparsityMode::SparTen { .. }) {
                assert!(
                    r.cycles <= r.dense_cycles as f64 + 1e-9,
                    "({m},{k},{n}) {mode:?}: sparse slower than dense"
                );
            }
        }
    }
}

#[test]
fn all_zero_weights_take_almost_no_compute() {
    // A completely pruned layer: B-skipping architectures blast through.
    let shape = GemmShape::new(16, 256, 32).unwrap();
    let l = GemmLayer::new(
        shape,
        SparsityMask::ones(16, 256),
        SparsityMask::zeros(256, 32),
    )
    .unwrap();
    let cfg = SimConfig::exact();
    let r = simulate_layer(
        &l,
        SparsityMode::SparseB {
            win: BorrowWindow::new(4, 0, 1),
            shuffle: true,
        },
        &cfg,
    );
    assert_eq!(r.effectual_ops, 0.0);
    assert!(r.speedup() > 50.0, "speedup {}", r.speedup());
}

#[test]
fn all_zero_activations_take_almost_no_compute_dual() {
    let shape = GemmShape::new(16, 256, 32).unwrap();
    let l = GemmLayer::new(
        shape,
        SparsityMask::zeros(16, 256),
        SparsityMask::ones(256, 32),
    )
    .unwrap();
    let r = simulate_layer(
        &l,
        SparsityMode::SparseAB {
            a: BorrowWindow::new(2, 0, 0),
            b: BorrowWindow::new(2, 0, 1),
            shuffle: true,
        },
        &SimConfig::exact(),
    );
    assert_eq!(r.effectual_ops, 0.0);
    assert!(r.speedup() > 10.0);
}

#[test]
fn extreme_windows_do_not_break_invariants() {
    let l = GemmLayer::with_densities(GemmShape::new(8, 128, 16).unwrap(), 0.4, 0.2, 3).unwrap();
    let cfg = SimConfig::exact();
    // Very deep windows: speedup capped by ideal.
    let r = simulate_layer(
        &l,
        SparsityMode::SparseB {
            win: BorrowWindow::new(64, 8, 8),
            shuffle: true,
        },
        &cfg,
    );
    let ideal = 1.0 / l.b_density();
    assert!(
        r.speedup() <= ideal * 1.05,
        "speedup {} vs ideal {}",
        r.speedup(),
        ideal
    );
    // Zero windows: no gains beyond empty-row skipping.
    let r0 = simulate_layer(
        &l,
        SparsityMode::SparseB {
            win: BorrowWindow::ZERO,
            shuffle: false,
        },
        &cfg,
    );
    assert!(r0.speedup() >= 1.0);
    assert!(r0.speedup() <= 1.3);
}

#[test]
fn replicated_layers_scale_linearly() {
    let shape = GemmShape::new(16, 64, 16).unwrap();
    let base = GemmLayer::with_densities(shape, 1.0, 0.3, 5).unwrap();
    let replicated = base.clone().with_replicas(7);
    let cfg = SimConfig::exact();
    let mode = SparsityMode::SparseB {
        win: BorrowWindow::new(4, 0, 1),
        shuffle: true,
    };
    let r1 = simulate_layer(&base, mode, &cfg);
    let r7 = simulate_layer(&replicated, mode, &cfg);
    assert!((r7.cycles - 7.0 * r1.cycles).abs() < 1e-6);
    assert_eq!(r7.dense_cycles, 7 * r1.dense_cycles);
    assert!((r7.speedup() - r1.speedup()).abs() < 1e-9);
}

#[test]
fn tiny_core_configurations_work() {
    // The simulator must not assume the paper's (16,16,4).
    let core = CoreDims::new(4, 2, 2).unwrap();
    let cfg = SimConfig {
        core,
        ..SimConfig::exact()
    };
    let l = GemmLayer::with_densities(GemmShape::new(8, 32, 8).unwrap(), 0.5, 0.5, 9).unwrap();
    for mode in all_modes() {
        let r = simulate_layer(&l, mode, &cfg);
        assert!(r.cycles >= 1.0, "{mode:?}");
        assert!(r.speedup() <= 8.0, "{mode:?}");
    }
}

#[test]
fn k_smaller_than_lane_count_is_handled() {
    // Depthwise-style GEMM: K = 9 < K0 = 16, N = 1.
    let l = GemmLayer::with_densities(GemmShape::new(49, 9, 1).unwrap(), 0.5, 1.0, 4).unwrap();
    let r = simulate_layer(
        &l,
        SparsityMode::SparseA {
            win: BorrowWindow::new(2, 1, 1),
            shuffle: true,
        },
        &SimConfig::exact(),
    );
    assert!(r.cycles >= 1.0);
    assert!(r.cycles <= r.dense_cycles as f64);
}

#[test]
fn dense_run_reports_full_utilization() {
    let l = GemmLayer::with_densities(GemmShape::new(16, 256, 32).unwrap(), 1.0, 1.0, 1).unwrap();
    let r = simulate_layer(&l, SparsityMode::Dense, &SimConfig::exact());
    assert!((r.utilization(CoreDims::PAPER) - 1.0).abs() < 1e-9);
    assert_eq!(r.borrowed_ops, 0.0);
    assert_eq!(r.starved_cycles, 0.0);
}
