//! Property tests of the campaign-model fold: arbitrary sequences of
//! valid schema events (v1 and v2 wire forms, via the fleet's shared
//! sample generator) must never panic the model, progress must be
//! monotone within a run, and terminal state must track exactly the
//! terminal events.

use griffin_fleet::events::sample::build_event;
use griffin_fleet::events::Event;
use griffin_sweep::json::Json;
use griffin_watch::{CampaignModel, CampaignState};
use proptest::prelude::*;

/// Draws one event from the shared schema generator. `special` is
/// pinned to 0 so metrics stay finite (the model ignores metrics, but
/// serialized lines must round-trip cleanly for the v1/v2 comparison).
fn event_from(draw: (usize, u64, u64, bool)) -> Event {
    let (variant, a, b, flag) = draw;
    build_event(variant % 14, a, b, flag, 0)
}

/// Serializes `ev` the way a v1 producer would have: no v2/v3-only
/// optional fields (`healed` on merge_done; the enrichment pair on
/// heartbeat; `host`/`backoff_ms` on the shard lifecycle events).
fn as_v1_line(ev: &Event) -> String {
    let Json::Obj(mut m) = ev.to_json() else {
        panic!("events serialize to objects");
    };
    m.remove("format");
    m.remove("healed");
    // `host` is required on host_lost/host_retired (which have no
    // legacy form at all) — only the shard events carry it optionally.
    if matches!(
        ev,
        Event::ShardStart { .. }
            | Event::ShardDone { .. }
            | Event::ShardFailed { .. }
            | Event::ShardRetried { .. }
    ) {
        m.remove("host");
        m.remove("backoff_ms");
    }
    if matches!(ev, Event::Heartbeat { .. }) {
        m.remove("elapsed_ms");
        m.remove("cached");
    }
    Json::Obj(m).write()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Folding any event sequence never panics, keeps progress monotone
    /// within a run (only `campaign_start` may reset it), and lands in
    /// a terminal state exactly when the last lifecycle event was
    /// terminal.
    #[test]
    fn fold_is_total_monotone_and_terminal_correct(
        draws in proptest::collection::vec(
            (0usize..14, 0u64..u64::MAX, 0u64..u64::MAX, proptest::bool::ANY),
            0..120,
        ),
    ) {
        let mut m = CampaignModel::new();
        let mut prev_done = 0usize;
        let mut expect_terminal = false;
        for draw in &draws {
            let ev = event_from(*draw);
            m.apply(&ev);
            match &ev {
                Event::CampaignStart { .. } => expect_terminal = false,
                Event::CampaignDone { .. } | Event::CampaignFailed { .. } => {
                    expect_terminal = true;
                }
                _ => {}
            }
            if matches!(ev, Event::CampaignStart { .. }) {
                prev_done = m.done(); // a restart may legally reset progress
            } else {
                prop_assert!(
                    m.done() >= prev_done,
                    "progress went backwards: {} -> {} on {:?}",
                    prev_done, m.done(), ev
                );
                prev_done = m.done();
            }
            prop_assert_eq!(
                m.state.is_terminal(),
                expect_terminal,
                "terminal state must track the lifecycle events exactly"
            );
            prop_assert!(m.progress() >= 0.0 && m.progress() <= 1.0 || m.done() > m.total_cells,
                "progress stays in [0,1] whenever done <= total");
        }
        // The fold is deterministic: replaying yields an equal model.
        let mut again = CampaignModel::new();
        for draw in &draws {
            again.apply(&event_from(*draw));
        }
        prop_assert_eq!(&again, &m);
        // The summary never panics and always carries its format tag.
        prop_assert!(m.summary().write().contains("griffin-watch-summary/1"));
    }

    /// The wire-level fold agrees with the in-memory fold, and a v1
    /// stream (no enrichment fields) agrees on every counter that does
    /// not come from the enrichment: done, retries, cache hits, state.
    #[test]
    fn v2_lines_match_events_and_v1_lines_match_on_core_counters(
        draws in proptest::collection::vec(
            (0usize..14, 0u64..u64::MAX, 0u64..u64::MAX, proptest::bool::ANY),
            0..60,
        ),
    ) {
        let events: Vec<Event> = draws.iter().map(|d| event_from(*d)).collect();

        let mut direct = CampaignModel::new();
        let mut from_v2 = CampaignModel::new();
        let mut from_v1 = CampaignModel::new();
        for ev in &events {
            direct.apply(ev);
            from_v2.apply_line(&ev.to_line());
            from_v1.apply_line(&as_v1_line(ev));
        }
        prop_assert_eq!(&from_v2, &direct, "serialize -> parse -> fold is the identity");
        prop_assert_eq!(from_v1.parse_errors, 0, "v1 lines all parse");
        prop_assert_eq!(from_v1.done(), direct.done());
        prop_assert_eq!(from_v1.retries, direct.retries);
        prop_assert_eq!(from_v1.cache_hits, direct.cache_hits);
        prop_assert_eq!(from_v1.requeued_cells, direct.requeued_cells);
        prop_assert_eq!(from_v1.failures.len(), direct.failures.len());
        prop_assert_eq!(from_v1.state.tag(), direct.state.tag());
    }

    /// A well-formed run — start, per-shard starts, every cell done
    /// exactly once, shard/campaign footers — always folds to a model
    /// where done == total and the state is `done`, independent of how
    /// cells interleave across shards.
    #[test]
    fn complete_runs_always_reach_done_equals_total(
        cells in 1usize..40,
        shards in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let mut m = CampaignModel::new();
        m.apply(&build_event(0, 0, 0, false, 0)); // arbitrary header...
        // ...replaced by a coherent one.
        m.apply(&Event::CampaignStart {
            campaign: "prop".into(),
            spec_fp: griffin_sweep::fingerprint::Fingerprint(seed, seed),
            cells,
            shards,
            resumed: 0,
            scenario: None,
        });
        for s in 0..shards {
            m.apply(&Event::ShardStart {
                shard: s,
                cells: cells / shards,
                skipped: 0,
                host: None,
            });
        }
        // A deterministic shuffle of cell completion order.
        let mut order: Vec<usize> = (0..cells).collect();
        for i in (1..cells).rev() {
            let j = ((seed >> (i % 48)) as usize).wrapping_add(i * 7919) % (i + 1);
            order.swap(i, j);
        }
        for (k, cell) in order.iter().enumerate() {
            if let Event::CellDone { fp, cached, metrics, .. } =
                build_event(3, seed ^ k as u64, *cell as u64, k % 3 == 0, 0)
            {
                m.apply(&Event::CellDone {
                    shard: cell % shards,
                    cell: *cell,
                    fp,
                    cached,
                    metrics,
                });
            }
            prop_assert_eq!(m.done(), k + 1, "each first-time completion advances done");
        }
        m.apply(&Event::CampaignDone { cells, elapsed_ms: 1 });
        prop_assert_eq!(m.done(), cells);
        prop_assert!(matches!(m.state, CampaignState::Done { .. }));
        prop_assert!((m.progress() - 1.0).abs() < 1e-12);
    }
}
