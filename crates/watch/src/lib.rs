//! Live observability for Griffin fleet campaigns.
//!
//! A fleet run narrates itself through an append-only JSONL event
//! stream (`griffin-fleet-events/3`); this crate is the consumer side:
//! it attaches to that stream — live or finished — **without ever
//! writing to the run directory**, folds it into a [`CampaignModel`],
//! and renders the result as a terminal dashboard, a machine-readable
//! JSON summary, or a self-contained static HTML report.
//!
//! The design splits cleanly along purity lines:
//!
//! * [`model`] — [`CampaignModel`], a *pure* replay fold over
//!   [`griffin_fleet::events::Event`]: no clock, no I/O, identical on
//!   live, finished, and resumed streams, property-testable against
//!   arbitrary event sequences. Time-derived rates ([`RateTracker`])
//!   are clocked explicitly by the caller.
//! * [`follow`] — [`Watcher`], the incremental tailer: a
//!   [`griffin_fleet::TailCursor`] (the journal's own torn-line rule)
//!   feeding the model, poll by poll.
//! * [`render`] — plain-ANSI [`dashboard`] frames and the
//!   [`status_line`] fallback for pipes and dumb terminals.
//! * [`html`] — [`report_html`], one inline-everything page for
//!   post-hoc campaign archaeology.
//!
//! # Example: summarizing a finished run
//!
//! ```no_run
//! use griffin_watch::CampaignModel;
//!
//! let m = CampaignModel::from_file("runs/fleet/events.jsonl".as_ref()).unwrap();
//! println!("{}", m.summary().write()); // griffin-watch-summary/1
//! assert!(m.state.is_terminal());
//! ```

pub mod follow;
pub mod html;
pub mod model;
pub mod render;

pub use follow::{PollReport, WatchOutcome, Watcher, DEFAULT_RATE_TAU_MS};
pub use html::report_html;
pub use model::{
    CampaignModel, CampaignState, Failure, MergeSummary, RateTracker, ShardModel, ShardState,
    SUMMARY_FORMAT,
};
pub use render::{dashboard, fmt_duration_ms, status_line};
