//! Incremental follower: a [`TailCursor`] feeding a [`CampaignModel`].
//!
//! [`Watcher`] owns the cursor, the model, and the [`RateTracker`]; one
//! [`poll`](Watcher::poll) drains whatever the producer appended and
//! folds it. The watcher never writes to the run directory — it opens
//! the stream read-only, so fleet output (reports, caches, journal)
//! stays byte-identical whether or not anyone is watching.
//!
//! The driver loop (sleep cadence, terminal redraws, exit codes) lives
//! in the caller; this type holds only the stream-to-model plumbing so
//! it is testable without a clock or a terminal.

use crate::model::{CampaignModel, CampaignState, RateTracker};
use griffin_fleet::TailCursor;
use std::io;
use std::path::{Path, PathBuf};

/// Default smoothing window for the live cells/sec EMA (ms).
pub const DEFAULT_RATE_TAU_MS: f64 = 10_000.0;

/// How one poll changed the watcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollReport {
    /// Events folded by this poll (0 = nothing new).
    pub folded: usize,
    /// The stream was truncated and re-grown by a fresh campaign; the
    /// model was rebuilt from the new stream's first lines.
    pub restarted: bool,
}

/// Terminal outcome of a followed campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchOutcome {
    /// Stream ended with `campaign_done`.
    Done {
        /// Total grid cells reported.
        cells: usize,
        /// Wall-clock milliseconds of the whole fleet run.
        elapsed_ms: u64,
    },
    /// Stream ended with `campaign_failed`.
    Failed {
        /// Human-readable cause.
        msg: String,
    },
}

/// A live event-stream follower.
#[derive(Debug)]
pub struct Watcher {
    cursor: TailCursor,
    model: CampaignModel,
    rates: RateTracker,
}

impl Watcher {
    /// A watcher over `events_path` (which need not exist yet — the
    /// fleet may not have started).
    pub fn new(events_path: impl Into<PathBuf>) -> Self {
        Watcher {
            cursor: TailCursor::new(events_path),
            model: CampaignModel::new(),
            rates: RateTracker::new(DEFAULT_RATE_TAU_MS),
        }
    }

    /// The followed stream path.
    pub fn path(&self) -> &Path {
        self.cursor.path()
    }

    /// The current model.
    pub fn model(&self) -> &CampaignModel {
        &self.model
    }

    /// The caller-clocked throughput tracker.
    pub fn rates(&self) -> &RateTracker {
        &self.rates
    }

    /// Drains newly appended complete lines into the model and feeds
    /// the rate tracker at `now_ms` (any monotone caller clock).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the stream not existing
    /// yet.
    pub fn poll(&mut self, now_ms: u64) -> io::Result<PollReport> {
        let tail = self.cursor.poll()?;
        if tail.truncated {
            self.model = CampaignModel::new();
            self.rates = RateTracker::new(DEFAULT_RATE_TAU_MS);
        }
        for line in &tail.lines {
            self.model.apply_line(line);
        }
        self.rates.observe(now_ms, self.model.done());
        Ok(PollReport {
            folded: tail.lines.len(),
            restarted: tail.truncated,
        })
    }

    /// The terminal outcome, once the model reaches one.
    pub fn outcome(&self) -> Option<WatchOutcome> {
        match &self.model.state {
            CampaignState::Done { cells, elapsed_ms } => Some(WatchOutcome::Done {
                cells: *cells,
                elapsed_ms: *elapsed_ms,
            }),
            CampaignState::Failed { msg } => Some(WatchOutcome::Failed { msg: msg.clone() }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_fleet::events::Event;
    use griffin_sweep::fingerprint::Fingerprint;
    use std::io::Write;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "griffin-watch-follow-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn watcher_follows_a_stream_to_its_terminal_event() {
        let path = tmp("terminal");
        let _ = std::fs::remove_file(&path);
        let mut w = Watcher::new(&path);
        // Nothing yet: empty poll, no outcome.
        assert_eq!(w.poll(0).unwrap().folded, 0);
        assert_eq!(w.outcome(), None);

        let start = Event::CampaignStart {
            campaign: "f".into(),
            spec_fp: Fingerprint(1, 1),
            cells: 1,
            shards: 1,
            resumed: 0,
            scenario: None,
        };
        let done_line = Event::CampaignDone {
            cells: 1,
            elapsed_ms: 9,
        }
        .to_line();
        let mut f = std::fs::File::create(&path).unwrap();
        // A torn tail: the terminal event is only half-appended.
        write!(f, "{}\n{}", start.to_line(), &done_line[..10]).unwrap();
        f.flush().unwrap();
        let p = w.poll(100).unwrap();
        assert_eq!(p.folded, 1);
        assert_eq!(w.outcome(), None, "torn terminal line is not terminal");

        // The rest of the line lands.
        writeln!(f, "{}", &done_line[10..]).unwrap();
        f.flush().unwrap();
        w.poll(200).unwrap();
        assert_eq!(
            w.outcome(),
            Some(WatchOutcome::Done {
                cells: 1,
                elapsed_ms: 9
            })
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_rebuilds_the_model() {
        let path = tmp("rebuild");
        let start = |name: &str| Event::CampaignStart {
            campaign: name.into(),
            spec_fp: Fingerprint(2, 2),
            cells: 5,
            shards: 1,
            resumed: 0,
            scenario: None,
        };
        std::fs::write(
            &path,
            format!("{}\n{}\n", start("old").to_line(), start("old").to_line()),
        )
        .unwrap();
        let mut w = Watcher::new(&path);
        w.poll(0).unwrap();
        assert_eq!(w.model().restarts, 1);

        // A fresh campaign rewrites the stream shorter.
        std::fs::write(&path, format!("{}\n", start("new").to_line())).unwrap();
        let p = w.poll(10).unwrap();
        assert!(p.restarted);
        assert_eq!(w.model().campaign, "new");
        assert_eq!(w.model().restarts, 0, "model rebuilt, not appended to");
        std::fs::remove_file(&path).unwrap();
    }
}
