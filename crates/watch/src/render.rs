//! Terminal rendering: a plain-ANSI dashboard and a line-mode fallback.
//!
//! Both renderers are pure `model → String` functions — no terminal
//! probing, no clocks — so they are unit-testable and the CLI decides
//! how to put the frames on screen (full-frame redraw for a TTY,
//! one-line-per-tick for `--no-tty` / pipes). Styling sticks to the
//! bold/dim/color SGR codes every ANSI terminal has supported since
//! forever; `ansi: false` strips them for dumb terminals and tests.

use crate::model::{CampaignModel, CampaignState, HostState, RateTracker, ShardState};
use std::fmt::Write as _;

/// Renders `ms` as a compact human duration (`850ms`, `4.2s`, `3m04s`).
pub fn fmt_duration_ms(ms: u64) -> String {
    if ms < 1000 {
        format!("{ms}ms")
    } else if ms < 60_000 {
        format!("{:.1}s", ms as f64 / 1000.0)
    } else {
        format!("{}m{:02}s", ms / 60_000, (ms % 60_000) / 1000)
    }
}

/// ASCII progress bar of `frac` (clamped) over `width` cells.
fn bar(frac: f64, width: usize) -> String {
    let width = width.max(1);
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width + 2);
    s.push('[');
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s.push(']');
    s
}

/// SGR helper: wraps `text` in `codes` when ANSI is on.
fn sgr(ansi: bool, codes: &str, text: &str) -> String {
    if ansi {
        format!("\x1b[{codes}m{text}\x1b[0m")
    } else {
        text.to_string()
    }
}

fn state_style(state: &CampaignState) -> &'static str {
    match state {
        CampaignState::Waiting => "2",          // dim
        CampaignState::Running => "1;36",       // bold cyan
        CampaignState::Done { .. } => "1;32",   // bold green
        CampaignState::Failed { .. } => "1;31", // bold red
    }
}

fn shard_style(state: &ShardState) -> &'static str {
    match state {
        ShardState::Pending => "2",
        ShardState::Running => "36",
        ShardState::Done => "32",
        ShardState::Failed => "31",
        ShardState::Retrying => "33",
    }
}

/// The full-screen dashboard frame (no cursor control — the caller
/// clears/homes between frames). `width` bounds the progress bar.
pub fn dashboard(model: &CampaignModel, rates: &RateTracker, width: usize, ansi: bool) -> String {
    let mut out = String::new();
    let title = if model.campaign.is_empty() {
        "(waiting for campaign_start)".to_string()
    } else {
        model.campaign.clone()
    };
    let _ = writeln!(
        out,
        "{} {} · {}",
        sgr(ansi, "1", "griffin fleet watch"),
        title,
        sgr(ansi, state_style(&model.state), model.state.tag()),
    );

    // Progress line: bar, counts, rates, ETA.
    let done = model.done();
    let barw = width.saturating_sub(30).clamp(10, 60);
    let _ = write!(
        out,
        "cells {} {done}/{}",
        bar(model.progress(), barw),
        model.total_cells
    );
    if let Some(ema) = rates.cells_per_sec() {
        let _ = write!(out, " · {ema:.1}/s");
        if !model.state.is_terminal() {
            if let Some(eta) = rates.eta_ms(model.total_cells.saturating_sub(done)) {
                let _ = write!(out, " · eta {}", fmt_duration_ms(eta));
            }
        }
    }
    if let Some(cum) = model.cumulative_cells_per_sec() {
        let _ = write!(out, " · {cum:.1}/s overall");
    }
    out.push('\n');

    // Counter line.
    let _ = write!(
        out,
        "cache {} hit / {} events",
        model.cache_hits, model.cell_events
    );
    if let Some(r) = model.cache_hit_ratio() {
        let _ = write!(out, " ({:.0}%)", r * 100.0);
    }
    let _ = write!(
        out,
        " · retries {} · requeued {} · resumed {}",
        model.retries, model.requeued_cells, model.resumed
    );
    if model.restarts > 0 {
        let _ = write!(out, " · restarts {}", model.restarts);
    }
    if let Some(m) = &model.merge {
        let _ = write!(out, " · healed {}", m.healed);
    }
    if model.parse_errors > 0 {
        let _ = write!(
            out,
            " · {}",
            sgr(ansi, "31", &format!("{} bad lines", model.parse_errors))
        );
    }
    out.push('\n');

    // Host status line (multi-host fleets only).
    if !model.hosts.is_empty() {
        let _ = write!(out, "hosts");
        for (name, h) in &model.hosts {
            let style = match h.state {
                HostState::Live => "36",
                HostState::Lost => "1;31",
                HostState::Retired => "32",
            };
            let _ = write!(out, " · {name} {}", sgr(ansi, style, h.state.tag()));
            if h.shards_moved > 0 {
                let _ = write!(out, " ({} shards moved)", h.shards_moved);
            }
        }
        out.push('\n');
    }

    // Per-shard table.
    for (idx, s) in &model.shards {
        let _ = write!(
            out,
            "  shard {idx:>3} {:<8} {:>5}/{:<5} cached {:<5} attempt {} · {}",
            sgr(ansi, shard_style(&s.state), s.state.tag()),
            s.done,
            s.planned,
            s.cached,
            s.attempt,
            fmt_duration_ms(s.elapsed_ms),
        );
        if let Some(h) = &s.host {
            let _ = write!(out, " @ {h}");
        }
        out.push('\n');
    }

    // Failure log (most recent last, like the stream).
    for f in &model.failures {
        let _ = writeln!(
            out,
            "  {} shard {} attempt {}: {}",
            sgr(ansi, "31", "fail"),
            f.shard,
            f.attempt,
            f.msg
        );
    }
    if let CampaignState::Failed { msg } = &model.state {
        let _ = writeln!(out, "{} {}", sgr(ansi, "1;31", "campaign failed:"), msg);
    }
    out
}

/// One-line status for `--no-tty` mode and log files: stable
/// `key=value` fields, no ANSI, no cursor tricks.
pub fn status_line(model: &CampaignModel, rates: &RateTracker) -> String {
    let mut out = format!(
        "watch state={} done={}/{} cached={} retries={} shards={}",
        model.state.tag(),
        model.done(),
        model.total_cells,
        model.cache_hits,
        model.retries,
        model.shards.len(),
    );
    if let Some(ema) = rates.cells_per_sec() {
        let _ = write!(out, " cells_per_sec={ema:.1}");
    }
    if !model.failures.is_empty() {
        let _ = write!(out, " failures={}", model.failures.len());
    }
    if !model.hosts.is_empty() {
        let lost = model
            .hosts
            .values()
            .filter(|h| h.state == HostState::Lost)
            .count();
        let _ = write!(out, " hosts={} hosts_lost={lost}", model.hosts.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_fleet::events::Event;
    use griffin_sweep::fingerprint::Fingerprint;

    fn model() -> CampaignModel {
        let mut m = CampaignModel::new();
        m.apply(&Event::CampaignStart {
            campaign: "render-me".into(),
            spec_fp: Fingerprint(3, 4),
            cells: 10,
            shards: 2,
            resumed: 2,
            scenario: None,
        });
        m.apply(&Event::ShardStart {
            shard: 0,
            cells: 5,
            skipped: 1,
            host: None,
        });
        m.apply(&Event::ShardFailed {
            shard: 1,
            attempt: 0,
            msg: "went silent".into(),
            host: None,
        });
        m
    }

    fn hosted_model() -> CampaignModel {
        let mut m = model();
        m.apply(&Event::ShardStart {
            shard: 1,
            cells: 5,
            skipped: 0,
            host: Some("web-02".into()),
        });
        m.apply(&Event::HostLost {
            host: "web-02".into(),
            shards: 1,
        });
        m.apply(&Event::HostRetired {
            host: "web-01".into(),
        });
        m
    }

    #[test]
    fn dashboard_mentions_every_section_without_ansi() {
        let m = model();
        let frame = dashboard(&m, &RateTracker::new(1000.0), 80, false);
        assert!(frame.contains("render-me"));
        assert!(frame.contains("running"));
        assert!(frame.contains("shard   0"));
        assert!(frame.contains("fail shard 1 attempt 0: went silent"));
        assert!(!frame.contains('\x1b'), "ansi=false strips escapes");
    }

    #[test]
    fn dashboard_with_ansi_brackets_styles_correctly() {
        let frame = dashboard(&model(), &RateTracker::new(1000.0), 80, true);
        assert!(frame.contains("\x1b[1mgriffin fleet watch\x1b[0m"));
        assert_eq!(
            frame.matches("\x1b[").count() % 2,
            0,
            "every SGR open has its reset"
        );
    }

    #[test]
    fn dashboard_and_status_line_surface_host_liveness() {
        let m = hosted_model();
        let frame = dashboard(&m, &RateTracker::new(1000.0), 80, false);
        assert!(frame.contains("web-02 lost (1 shards moved)"), "{frame}");
        assert!(frame.contains("web-01 retired"), "{frame}");
        assert!(frame.contains("@ web-02"), "shard row names its host");
        let line = status_line(&m, &RateTracker::new(1000.0));
        assert!(line.contains("hosts=2 hosts_lost=1"), "{line}");
        // Single-machine streams stay host-free.
        let plain = dashboard(&model(), &RateTracker::new(1000.0), 80, false);
        assert!(!plain.contains("hosts"), "{plain}");
    }

    #[test]
    fn status_line_is_single_line_and_greppable() {
        let mut r = RateTracker::new(1000.0);
        r.observe(0, 0);
        r.observe(1000, 3);
        let line = status_line(&model(), &r);
        assert!(!line.contains('\n'));
        assert!(line.contains("state=running"));
        assert!(line.contains("done=2/10"), "resumed cells count: {line}");
        assert!(line.contains("cells_per_sec=3.0"));
        assert!(line.contains("failures=1"));
    }

    #[test]
    fn durations_format_compactly() {
        assert_eq!(fmt_duration_ms(850), "850ms");
        assert_eq!(fmt_duration_ms(4230), "4.2s");
        assert_eq!(fmt_duration_ms(184_000), "3m04s");
    }
}
