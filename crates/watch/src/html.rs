//! Post-hoc HTML report: one self-contained static page.
//!
//! The page embeds everything inline — CSS in a `<style>` block, a few
//! lines of script, the JSON summary in a data block — and references
//! no external resource of any kind, so it renders from a `file:` open
//! on an air-gapped machine and can be archived next to the run
//! directory it describes. The emitter is a pure `model → String`
//! function; writing the file is the caller's business.

use crate::model::{CampaignModel, CampaignState};
use crate::render::fmt_duration_ms;
use std::fmt::Write as _;

/// Escapes text for HTML body and attribute contexts.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders the self-contained campaign report page.
pub fn report_html(model: &CampaignModel) -> String {
    let state_class = model.state.tag();
    let pct = model.progress() * 100.0;
    let mut b = String::with_capacity(8192);
    b.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(
        b,
        "<title>griffin campaign report · {}</title>",
        esc(&model.campaign)
    );
    b.push_str(concat!(
        "<style>\n",
        "body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:60rem;",
        "padding:0 1rem;color:#1c2330;background:#fafbfc}\n",
        "h1{font-size:1.3rem}h2{font-size:1.05rem;margin-top:1.6rem}\n",
        "table{border-collapse:collapse;width:100%;margin:.5rem 0}\n",
        "th,td{border:1px solid #d4dae3;padding:.3rem .6rem;text-align:left;",
        "font-variant-numeric:tabular-nums}\n",
        "th{background:#eef1f5}\n",
        ".bar{background:#e3e7ee;border-radius:4px;height:1rem;overflow:hidden}\n",
        ".bar span{display:block;height:100%;background:#3a7d44}\n",
        ".state{padding:.1rem .5rem;border-radius:4px;font-weight:600}\n",
        ".state.done{background:#d8f0dc;color:#205c2a}\n",
        ".state.failed{background:#f7d9d9;color:#8a1f1f}\n",
        ".state.running,.state.waiting{background:#dde7f7;color:#1f3f77}\n",
        ".fail{color:#8a1f1f}\n",
        "pre{background:#eef1f5;padding:.8rem;border-radius:4px;overflow:auto;",
        "display:none}\n",
        "pre.open{display:block}\n",
        "</style>\n</head>\n<body>\n"
    ));
    let _ = writeln!(
        b,
        "<h1>griffin campaign report · {} <span class=\"state {state_class}\">{}</span></h1>",
        esc(&model.campaign),
        model.state.tag()
    );
    if let Some(fp) = model.spec_fp {
        let _ = writeln!(b, "<p>grid fingerprint <code>{fp}</code></p>");
    }
    if let Some(s) = &model.scenario {
        let _ = writeln!(
            b,
            "<p>scenario <code>{}</code> (<code>{}</code>)</p>",
            esc(&s.file),
            s.fp
        );
    }

    // Progress.
    let _ = writeln!(
        b,
        "<div class=\"bar\"><span style=\"width:{pct:.1}%\"></span></div>\n\
         <p>{} of {} cells ({pct:.1}%) · elapsed {}</p>",
        model.done(),
        model.total_cells,
        fmt_duration_ms(model.elapsed_ms())
    );

    // Campaign counters.
    b.push_str("<h2>Campaign</h2>\n<table>\n<tr><th>metric</th><th>value</th></tr>\n");
    let mut row = |k: &str, v: String| {
        let _ = writeln!(b, "<tr><td>{k}</td><td>{v}</td></tr>");
    };
    row("shards", model.shard_count.to_string());
    row("resumed from journal", model.resumed.to_string());
    row(
        "stream restarts (resume appends)",
        model.restarts.to_string(),
    );
    row("cell_done events", model.cell_events.to_string());
    row("cache hits", model.cache_hits.to_string());
    if let Some(r) = model.cache_hit_ratio() {
        row("cache-hit ratio", format!("{:.1}%", r * 100.0));
    }
    if let Some(cps) = model.cumulative_cells_per_sec() {
        row("cells/sec (cumulative)", format!("{cps:.2}"));
    }
    row("shard retries", model.retries.to_string());
    row("cells requeued", model.requeued_cells.to_string());
    if let Some(m) = &model.merge {
        row(
            "cache merge",
            format!(
                "{} merged · {} identical · {} healed · {} conflicts",
                m.merged, m.identical, m.healed, m.conflicts
            ),
        );
    }
    if model.parse_errors > 0 {
        row("unparseable stream lines", model.parse_errors.to_string());
    }
    b.push_str("</table>\n");

    // Shards.
    b.push_str(
        "<h2>Shards</h2>\n<table>\n<tr><th>shard</th><th>state</th><th>done</th>\
         <th>planned</th><th>skipped</th><th>cached</th><th>simulated</th>\
         <th>attempt</th><th>elapsed</th></tr>\n",
    );
    for (idx, s) in &model.shards {
        let _ = writeln!(
            b,
            "<tr><td>{idx}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            s.state.tag(),
            s.done,
            s.planned,
            s.skipped,
            s.cached,
            s.simulated,
            s.attempt,
            fmt_duration_ms(s.elapsed_ms)
        );
    }
    b.push_str("</table>\n");

    // Failure archaeology.
    b.push_str("<h2>Failures</h2>\n");
    if model.failures.is_empty() && !matches!(model.state, CampaignState::Failed { .. }) {
        b.push_str("<p>none</p>\n");
    } else {
        b.push_str("<ul>\n");
        for f in &model.failures {
            let _ = writeln!(
                b,
                "<li class=\"fail\">shard {} attempt {}: {}</li>",
                f.shard,
                f.attempt,
                esc(&f.msg)
            );
        }
        if let CampaignState::Failed { msg } = &model.state {
            let _ = writeln!(
                b,
                "<li class=\"fail\"><b>campaign failed:</b> {}</li>",
                esc(msg)
            );
        }
        b.push_str("</ul>\n");
    }

    // Machine-readable summary, embedded for archaeology and toggled
    // open by the only script on the page.
    b.push_str("<h2>Summary JSON</h2>\n<button id=\"t\">show</button>\n");
    let json = model.summary().write();
    let _ = writeln!(b, "<pre id=\"j\">{}</pre>", esc(&json));
    b.push_str(concat!(
        "<script>\n",
        "document.getElementById('t').addEventListener('click',function(){\n",
        "var p=document.getElementById('j');p.classList.toggle('open');\n",
        "this.textContent=p.classList.contains('open')?'hide':'show';});\n",
        "</script>\n</body>\n</html>\n"
    ));
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_fleet::events::Event;
    use griffin_sweep::fingerprint::Fingerprint;

    #[test]
    fn page_is_self_contained_and_escaped() {
        let mut m = CampaignModel::new();
        m.apply(&Event::CampaignStart {
            campaign: "a<b>&\"camp\"".into(),
            spec_fp: Fingerprint(5, 6),
            cells: 3,
            shards: 1,
            resumed: 0,
            scenario: None,
        });
        m.apply(&Event::ShardFailed {
            shard: 0,
            attempt: 0,
            msg: "exit <code> & chaos".into(),
            host: None,
        });
        m.apply(&Event::CampaignFailed {
            msg: "gave up".into(),
        });
        let page = report_html(&m);
        assert!(
            !page.contains("http"),
            "self-contained: no external references at all"
        );
        assert!(page.contains("a&lt;b&gt;&amp;&quot;camp&quot;"));
        assert!(page.contains("exit &lt;code&gt; &amp; chaos"));
        assert!(page.contains("campaign failed:"));
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.ends_with("</html>\n"));
    }

    #[test]
    fn page_reports_progress_and_counters() {
        let mut m = CampaignModel::new();
        m.apply(&Event::CampaignStart {
            campaign: "ok".into(),
            spec_fp: Fingerprint(1, 2),
            cells: 2,
            shards: 1,
            resumed: 1,
            scenario: None,
        });
        m.apply(&Event::CampaignDone {
            cells: 2,
            elapsed_ms: 1500,
        });
        let page = report_html(&m);
        assert!(page.contains("1 of 2 cells (50.0%)"));
        assert!(page.contains("elapsed 1.5s"));
        assert!(page.contains("griffin-watch-summary/1"));
    }
}
