//! The campaign model: a pure replay fold over fleet events.
//!
//! [`CampaignModel::apply`] consumes [`Event`]s one at a time and
//! maintains everything the dashboards render — per-shard progress,
//! cache-hit split, the retry/requeue/heal lifecycle, the failure log
//! and the terminal state. The fold is *pure*: it never reads a clock,
//! a file, or an environment variable, so the same event sequence
//! always produces the same model whether it arrives from a live tail,
//! a finished stream, or a property-test generator. Time-derived
//! metrics (windowed cells/sec, ETA) live in [`RateTracker`], which the
//! caller feeds an explicit timestamp.
//!
//! A resumed campaign appends a fresh `campaign_start` to the same
//! stream; the model resets on each one (counting [`restarts`]) so the
//! fold of the whole file always describes the *latest* run, with
//! earlier completions folded into `resumed`.
//!
//! [`restarts`]: CampaignModel::restarts

use griffin_fleet::events::Event;
use griffin_sweep::fingerprint::Fingerprint;
use griffin_sweep::json::Json;
use griffin_sweep::scenario::ScenarioProvenance;
use std::collections::{BTreeMap, BTreeSet};

/// Where the campaign is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CampaignState {
    /// No `campaign_start` folded yet (stream empty or still torn).
    #[default]
    Waiting,
    /// Between `campaign_start` and the terminal event.
    Running,
    /// Terminal: the final report was assembled.
    Done {
        /// Total grid cells reported.
        cells: usize,
        /// Wall-clock milliseconds of the whole fleet run.
        elapsed_ms: u64,
    },
    /// Terminal: the campaign aborted.
    Failed {
        /// Human-readable cause.
        msg: String,
    },
}

impl CampaignState {
    /// `done` / `failed` / `running` / `waiting` — the JSON summary tag.
    pub fn tag(&self) -> &'static str {
        match self {
            CampaignState::Waiting => "waiting",
            CampaignState::Running => "running",
            CampaignState::Done { .. } => "done",
            CampaignState::Failed { .. } => "failed",
        }
    }

    /// Whether the stream can emit nothing further.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            CampaignState::Done { .. } | CampaignState::Failed { .. }
        )
    }
}

/// One shard's lifecycle as seen through its events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ShardState {
    /// Planned (seen in a campaign header) but no `shard_start` yet.
    #[default]
    Pending,
    /// Executing cells.
    Running,
    /// `shard_done` observed.
    Done,
    /// `shard_failed` observed; may still be retried.
    Failed,
    /// `shard_retried` observed; a fresh attempt is launching.
    Retrying,
}

impl ShardState {
    /// Short human/JSON tag.
    pub fn tag(&self) -> &'static str {
        match self {
            ShardState::Pending => "pending",
            ShardState::Running => "running",
            ShardState::Done => "done",
            ShardState::Failed => "failed",
            ShardState::Retrying => "retrying",
        }
    }
}

/// Rolling view of one shard, folded from its events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardModel {
    /// Lifecycle state.
    pub state: ShardState,
    /// Cells planned onto this shard (from its latest `shard_start`).
    pub planned: usize,
    /// Cells skipped as journal-completed (latest attempt).
    pub skipped: usize,
    /// Cells finished by the *current* attempt (resets on re-start).
    pub done: usize,
    /// Of [`done`](Self::done), cells served from cache / dedup.
    pub cached: usize,
    /// Attempt number currently (or last) running; 0 = first launch.
    pub attempt: usize,
    /// Milliseconds into the current attempt, from the most recent
    /// heartbeat or `shard_done` (0 until either arrives).
    pub elapsed_ms: u64,
    /// Events folded for this shard since its last (re)start —
    /// liveness: a running shard whose count stops moving is silent.
    pub events: usize,
    /// Cells freshly simulated, authoritative once `shard_done` lands.
    pub simulated: usize,
    /// Host the shard is (or was last) running on — `None` for
    /// single-machine fleets, whose events carry no host labels.
    pub host: Option<String>,
}

impl ShardModel {
    fn restart(&mut self, planned: usize, skipped: usize) {
        let attempt = self.attempt;
        let host = self.host.take();
        *self = ShardModel {
            state: ShardState::Running,
            planned,
            skipped,
            attempt,
            host,
            ..ShardModel::default()
        };
    }

    fn note_host(&mut self, host: &Option<String>) {
        if host.is_some() {
            self.host = host.clone();
        }
    }
}

/// One host's liveness as seen through the event stream (multi-host
/// fleets only; single-machine streams never populate the host map).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum HostState {
    /// Carrying (or assigned) work, no verdict yet.
    #[default]
    Live,
    /// `host_lost` observed: the machine was declared dead and its
    /// shards re-queued onto survivors.
    Lost,
    /// `host_retired` observed: all of its shards completed.
    Retired,
}

impl HostState {
    /// Short human/JSON tag.
    pub fn tag(&self) -> &'static str {
        match self {
            HostState::Live => "live",
            HostState::Lost => "lost",
            HostState::Retired => "retired",
        }
    }
}

/// Rolling view of one fleet host.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HostModel {
    /// Liveness verdict.
    pub state: HostState,
    /// Shards that were pending on the host when it was lost.
    pub shards_moved: usize,
    /// `shard_failed` events attributed to this host.
    pub failures: usize,
}

/// One `shard_failed` event, kept verbatim for the failure log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Shard index.
    pub shard: usize,
    /// Attempt that failed (0 = first launch).
    pub attempt: usize,
    /// Human-readable cause.
    pub msg: String,
}

/// The `merge_done` counters, once the merge has run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeSummary {
    /// Source directories considered.
    pub sources: usize,
    /// Entries copied into the merged cache.
    pub merged: u64,
    /// Entries already present with identical content.
    pub identical: u64,
    /// Torn destination entries healed from good source content.
    pub healed: u64,
    /// Conflicting fingerprints (non-zero aborts the campaign).
    pub conflicts: u64,
}

/// Format tag of the JSON summary emitted by [`CampaignModel::summary`].
pub const SUMMARY_FORMAT: &str = "griffin-watch-summary/1";

/// A campaign reconstructed by folding its event stream.
///
/// All counters are defined directly in terms of raw event counts, so a
/// summary can be checked against `events.jsonl` with nothing fancier
/// than `grep -c`:
/// * [`done`](Self::done) = `resumed` + distinct `cell_done` cells,
/// * [`cache_hits`](Self::cache_hits) = `cell_done` lines with
///   `"cached":true`,
/// * [`retries`](Self::retries) = `shard_retried` lines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignModel {
    /// Campaign name (empty until `campaign_start`).
    pub campaign: String,
    /// Stable grid identity from the campaign header.
    pub spec_fp: Option<Fingerprint>,
    /// Total grid cells the campaign will report.
    pub total_cells: usize,
    /// Shard count from the campaign header.
    pub shard_count: usize,
    /// Cells restored from the journal before this run started.
    pub resumed: usize,
    /// Scenario provenance, when launched from a scenario file.
    pub scenario: Option<ScenarioProvenance>,
    /// `campaign_start` events beyond the first — i.e. how many times a
    /// resume appended a fresh run to this stream.
    pub restarts: usize,
    /// Per-shard models, keyed by shard index.
    pub shards: BTreeMap<usize, ShardModel>,
    /// Lifecycle state.
    pub state: CampaignState,
    /// Raw count of `cell_done` events (distinct or not).
    pub cell_events: usize,
    /// `cell_done` events with `cached == true`.
    pub cache_hits: usize,
    /// `shard_retried` events.
    pub retries: usize,
    /// Cells put back on the queue by `cells_requeued` events.
    pub requeued_cells: usize,
    /// Per-host liveness, keyed by host label (empty for
    /// single-machine fleets).
    pub hosts: BTreeMap<String, HostModel>,
    /// Failure log: every `shard_failed`, in stream order.
    pub failures: Vec<Failure>,
    /// Merge counters once `merge_done` lands.
    pub merge: Option<MergeSummary>,
    /// Total events folded since the last campaign (re)start.
    pub events_folded: usize,
    /// Complete lines that failed to parse as events (skipped).
    pub parse_errors: usize,
    done_cells: BTreeSet<usize>,
}

impl CampaignModel {
    /// An empty model awaiting its first event.
    pub fn new() -> Self {
        CampaignModel::default()
    }

    /// Cells complete toward [`total_cells`](Self::total_cells):
    /// journal-resumed cells plus distinct `cell_done` cells this run.
    pub fn done(&self) -> usize {
        self.resumed.saturating_add(self.done_cells.len())
    }

    /// Fraction complete in `[0, 1]` (0 when the total is unknown).
    pub fn progress(&self) -> f64 {
        if self.total_cells == 0 {
            0.0
        } else {
            self.done() as f64 / self.total_cells as f64
        }
    }

    /// Cache-hit ratio over this run's `cell_done` events (`None` until
    /// the first one).
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        (self.cell_events > 0).then(|| self.cache_hits as f64 / self.cell_events as f64)
    }

    /// Folds one event into the model. Never panics, for any sequence.
    pub fn apply(&mut self, ev: &Event) {
        self.events_folded = self.events_folded.saturating_add(1);
        match ev {
            Event::CampaignStart {
                campaign,
                spec_fp,
                cells,
                shards,
                resumed,
                scenario,
            } => {
                // A fresh run (possibly a resume) owns the stream from
                // here on: reset everything except the restart count.
                let restarts = if self.state == CampaignState::Waiting {
                    self.restarts
                } else {
                    self.restarts.saturating_add(1)
                };
                *self = CampaignModel {
                    campaign: campaign.clone(),
                    spec_fp: Some(*spec_fp),
                    total_cells: *cells,
                    shard_count: *shards,
                    resumed: *resumed,
                    scenario: scenario.clone(),
                    restarts,
                    state: CampaignState::Running,
                    events_folded: 1,
                    ..CampaignModel::default()
                };
            }
            Event::ShardStart {
                shard,
                cells,
                skipped,
                host,
            } => {
                let s = self.shard_mut(*shard);
                s.restart(*cells, *skipped);
                s.note_host(host);
                self.host_touch(host);
            }
            Event::CellStart { shard, .. } => self.shard_touch(*shard),
            Event::CellDone {
                shard,
                cell,
                cached,
                ..
            } => {
                self.done_cells.insert(*cell);
                self.cell_events = self.cell_events.saturating_add(1);
                if *cached {
                    self.cache_hits = self.cache_hits.saturating_add(1);
                }
                let s = self.shard_mut(*shard);
                s.done = s.done.saturating_add(1);
                if *cached {
                    s.cached = s.cached.saturating_add(1);
                }
            }
            Event::Heartbeat {
                shard,
                done,
                total,
                elapsed_ms,
                cached,
            } => {
                let s = self.shard_mut(*shard);
                // Heartbeats are authoritative for the attempt's own
                // progress (they can outrun the lock-serialized
                // cell_done fold only in pathological streams; take the
                // max so progress stays monotone either way).
                s.done = s.done.max(*done);
                s.cached = s.cached.max(*cached);
                s.planned = s.planned.max(*total);
                s.elapsed_ms = s.elapsed_ms.max(*elapsed_ms);
            }
            Event::ShardDone {
                shard,
                simulated,
                cached,
                elapsed_ms,
                host,
            } => {
                let s = self.shard_mut(*shard);
                s.state = ShardState::Done;
                s.simulated = *simulated;
                s.cached = s.cached.max(*cached);
                s.elapsed_ms = s.elapsed_ms.max(*elapsed_ms);
                s.note_host(host);
                self.host_touch(host);
            }
            Event::ShardFailed {
                shard,
                attempt,
                msg,
                host,
            } => {
                self.failures.push(Failure {
                    shard: *shard,
                    attempt: *attempt,
                    msg: msg.clone(),
                });
                let s = self.shard_mut(*shard);
                s.state = ShardState::Failed;
                s.attempt = s.attempt.max(*attempt);
                s.note_host(host);
                if let Some(h) = host {
                    let hm = self.hosts.entry(h.clone()).or_default();
                    hm.failures = hm.failures.saturating_add(1);
                }
            }
            Event::CellsRequeued { shard, cells } => {
                self.requeued_cells = self.requeued_cells.saturating_add(*cells);
                self.shard_touch(*shard);
            }
            Event::ShardRetried {
                shard,
                attempt,
                host,
                ..
            } => {
                self.retries = self.retries.saturating_add(1);
                let s = self.shard_mut(*shard);
                s.state = ShardState::Retrying;
                s.attempt = s.attempt.max(*attempt);
                s.note_host(host);
                self.host_touch(host);
            }
            Event::HostLost { host, shards } => {
                let hm = self.hosts.entry(host.clone()).or_default();
                hm.state = HostState::Lost;
                hm.shards_moved = hm.shards_moved.saturating_add(*shards);
            }
            Event::HostRetired { host } => {
                let hm = self.hosts.entry(host.clone()).or_default();
                // A loss verdict is final; retirement never upgrades it.
                if hm.state != HostState::Lost {
                    hm.state = HostState::Retired;
                }
            }
            Event::MergeDone {
                sources,
                merged,
                identical,
                healed,
                conflicts,
            } => {
                self.merge = Some(MergeSummary {
                    sources: *sources,
                    merged: *merged,
                    identical: *identical,
                    healed: *healed,
                    conflicts: *conflicts,
                });
            }
            Event::CampaignDone { cells, elapsed_ms } => {
                self.state = CampaignState::Done {
                    cells: *cells,
                    elapsed_ms: *elapsed_ms,
                };
            }
            Event::CampaignFailed { msg } => {
                self.state = CampaignState::Failed { msg: msg.clone() };
            }
        }
    }

    /// Parses and folds one stream line; malformed lines are counted in
    /// [`parse_errors`](Self::parse_errors) and skipped — a live tailer
    /// must outlive a corrupt line, unlike the resume-critical journal.
    pub fn apply_line(&mut self, line: &str) {
        match Event::parse_line(line) {
            Ok(ev) => self.apply(&ev),
            Err(_) => self.parse_errors = self.parse_errors.saturating_add(1),
        }
    }

    /// Folds every complete line of an event-stream buffer (one-shot
    /// read of a finished or in-flight `events.jsonl`).
    pub fn fold_text(text: &str) -> CampaignModel {
        let mut m = CampaignModel::new();
        for line in griffin_fleet::complete_lines(text) {
            m.apply_line(line);
        }
        m
    }

    /// One-shot fold of an event-stream file.
    ///
    /// # Errors
    ///
    /// Propagates the read error if the file cannot be read.
    pub fn from_file(path: &std::path::Path) -> std::io::Result<CampaignModel> {
        Ok(Self::fold_text(&std::fs::read_to_string(path)?))
    }

    /// Campaign wall-clock milliseconds: the terminal elapsed time once
    /// done, else the slowest live shard clock seen so far.
    pub fn elapsed_ms(&self) -> u64 {
        match &self.state {
            CampaignState::Done { elapsed_ms, .. } => *elapsed_ms,
            _ => self
                .shards
                .values()
                .map(|s| s.elapsed_ms)
                .max()
                .unwrap_or(0),
        }
    }

    /// Cumulative cells/sec over the campaign (`None` before any
    /// elapsed time is known). Uses completions *this run* — resumed
    /// cells cost no time, so they would inflate the rate.
    pub fn cumulative_cells_per_sec(&self) -> Option<f64> {
        let ms = self.elapsed_ms();
        (ms > 0).then(|| self.done_cells.len() as f64 * 1000.0 / ms as f64)
    }

    /// Estimated milliseconds to finish the remaining cells at the
    /// cumulative rate. `None` — rendered as `"n/a"` in the summary —
    /// when no estimate exists: the campaign is already terminal, no
    /// time has elapsed yet (campaign start), or nothing has completed
    /// this run (zero rate). Those cases must never surface as `0` or a
    /// saturated huge value.
    pub fn eta_ms(&self) -> Option<u64> {
        if self.state.is_terminal() {
            return None;
        }
        let cps = self
            .cumulative_cells_per_sec()
            .filter(|r| *r > f64::EPSILON)?;
        let remaining = self.total_cells.saturating_sub(self.done());
        Some((remaining as f64 * 1000.0 / cps) as u64)
    }

    /// The scripting summary (`griffin-watch-summary/1`): every counter
    /// the acceptance checks grep out of `events.jsonl`, plus per-shard
    /// detail and the failure log.
    pub fn summary(&self) -> Json {
        let num = |x: usize| Json::Num(x as f64);
        let mut o: Vec<(String, Json)> = vec![
            ("format".into(), Json::Str(SUMMARY_FORMAT.into())),
            ("state".into(), Json::Str(self.state.tag().into())),
            ("campaign".into(), Json::Str(self.campaign.clone())),
            ("cells".into(), num(self.total_cells)),
            ("done".into(), num(self.done())),
            ("resumed".into(), num(self.resumed)),
            ("restarts".into(), num(self.restarts)),
            ("shards".into(), num(self.shard_count)),
            ("cell_events".into(), num(self.cell_events)),
            ("cache_hits".into(), num(self.cache_hits)),
            ("retries".into(), num(self.retries)),
            ("requeued_cells".into(), num(self.requeued_cells)),
            (
                "hosts_lost".into(),
                num(self
                    .hosts
                    .values()
                    .filter(|h| h.state == HostState::Lost)
                    .count()),
            ),
            ("failures".into(), num(self.failures.len())),
            ("parse_errors".into(), num(self.parse_errors)),
            ("events".into(), num(self.events_folded)),
            ("elapsed_ms".into(), Json::Num(self.elapsed_ms() as f64)),
            (
                "eta_ms".into(),
                match self.eta_ms() {
                    Some(ms) => Json::Num(ms as f64),
                    None => Json::Str("n/a".into()),
                },
            ),
        ];
        if let Some(fp) = self.spec_fp {
            o.push(("spec_fp".into(), Json::Str(fp.to_string())));
        }
        if let Some(r) = self.cache_hit_ratio() {
            o.push(("cache_hit_ratio".into(), Json::from_f64(r)));
        }
        if let Some(cps) = self.cumulative_cells_per_sec() {
            o.push(("cells_per_sec".into(), Json::from_f64(cps)));
        }
        if let Some(s) = &self.scenario {
            o.push(("scenario_file".into(), Json::Str(s.file.clone())));
        }
        if let Some(m) = &self.merge {
            o.push((
                "merge".into(),
                Json::obj([
                    ("sources".into(), num(m.sources)),
                    ("merged".into(), Json::Num(m.merged as f64)),
                    ("identical".into(), Json::Num(m.identical as f64)),
                    ("healed".into(), Json::Num(m.healed as f64)),
                    ("conflicts".into(), Json::Num(m.conflicts as f64)),
                ]),
            ));
        }
        if let CampaignState::Failed { msg } = &self.state {
            o.push(("error".into(), Json::Str(msg.clone())));
        }
        if !self.hosts.is_empty() {
            o.push((
                "hosts".into(),
                Json::Arr(
                    self.hosts
                        .iter()
                        .map(|(name, h)| {
                            Json::obj([
                                ("host".into(), Json::Str(name.clone())),
                                ("state".into(), Json::Str(h.state.tag().into())),
                                ("shards_moved".into(), num(h.shards_moved)),
                                ("failures".into(), num(h.failures)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        o.push((
            "shard_detail".into(),
            Json::Arr(
                self.shards
                    .iter()
                    .map(|(idx, s)| {
                        let mut fields = vec![
                            ("shard".into(), num(*idx)),
                            ("state".into(), Json::Str(s.state.tag().into())),
                            ("planned".into(), num(s.planned)),
                            ("skipped".into(), num(s.skipped)),
                            ("done".into(), num(s.done)),
                            ("cached".into(), num(s.cached)),
                            ("simulated".into(), num(s.simulated)),
                            ("attempt".into(), num(s.attempt)),
                            ("elapsed_ms".into(), Json::Num(s.elapsed_ms as f64)),
                        ];
                        if let Some(h) = &s.host {
                            fields.push(("host".into(), Json::Str(h.clone())));
                        }
                        Json::obj(fields)
                    })
                    .collect(),
            ),
        ));
        o.push((
            "failure_log".into(),
            Json::Arr(
                self.failures
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("shard".into(), num(f.shard)),
                            ("attempt".into(), num(f.attempt)),
                            ("msg".into(), Json::Str(f.msg.clone())),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::obj(o)
    }

    fn shard_mut(&mut self, shard: usize) -> &mut ShardModel {
        let s = self.shards.entry(shard).or_default();
        s.events = s.events.saturating_add(1);
        s
    }

    fn shard_touch(&mut self, shard: usize) {
        self.shard_mut(shard);
    }

    /// Registers a labeled host as live — without overriding a loss or
    /// retirement verdict already folded.
    fn host_touch(&mut self, host: &Option<String>) {
        if let Some(h) = host {
            self.hosts.entry(h.clone()).or_default();
        }
    }
}

/// Windowed-EMA throughput over completion counts, clocked entirely by
/// the caller — the model stays pure; only this tracker knows the time.
///
/// The smoothing factor adapts to the actual gap between observations
/// (`alpha = 1 - exp(-dt/tau)`), so irregular poll intervals — long GC
/// of a quiet stream, bursts after a stall — don't bias the average.
#[derive(Debug, Clone)]
pub struct RateTracker {
    tau_ms: f64,
    last: Option<(u64, usize)>,
    ema: Option<f64>,
}

impl RateTracker {
    /// A tracker smoothing over roughly `tau_ms` of history.
    pub fn new(tau_ms: f64) -> Self {
        RateTracker {
            tau_ms: tau_ms.max(1.0),
            last: None,
            ema: None,
        }
    }

    /// Feeds the completion count observed at `now_ms`. Non-monotone
    /// clocks and counter resets (a campaign restart) re-seed the
    /// tracker instead of producing negative rates.
    pub fn observe(&mut self, now_ms: u64, done: usize) {
        let Some((t0, d0)) = self.last else {
            self.last = Some((now_ms, done));
            return;
        };
        if now_ms <= t0 || done < d0 {
            self.last = Some((now_ms, done));
            self.ema = if done < d0 { None } else { self.ema };
            return;
        }
        let dt = (now_ms - t0) as f64;
        let inst = (done - d0) as f64 * 1000.0 / dt;
        let alpha = 1.0 - (-dt / self.tau_ms).exp();
        self.ema = Some(match self.ema {
            Some(prev) => prev + alpha * (inst - prev),
            None => inst,
        });
        self.last = Some((now_ms, done));
    }

    /// Smoothed cells/sec (`None` until two observations arrive).
    pub fn cells_per_sec(&self) -> Option<f64> {
        self.ema
    }

    /// Estimated milliseconds to finish `remaining` cells at the
    /// current smoothed rate (`None` when the rate is unknown or zero).
    pub fn eta_ms(&self, remaining: usize) -> Option<u64> {
        let cps = self.ema.filter(|r| *r > f64::EPSILON)?;
        Some((remaining as f64 * 1000.0 / cps) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(cells: usize, shards: usize, resumed: usize) -> Event {
        Event::CampaignStart {
            campaign: "m".into(),
            spec_fp: Fingerprint(7, 9),
            cells,
            shards,
            resumed,
            scenario: None,
        }
    }

    fn cell_done(shard: usize, cell: usize, cached: bool) -> Event {
        Event::CellDone {
            shard,
            cell,
            fp: Fingerprint(cell as u64, 0),
            cached,
            metrics: griffin_sweep::cache::CellMetrics {
                speedup: 1.0,
                cycles: 1.0,
                dense_cycles: 1,
                power_mw: 1.0,
                area_mm2: 1.0,
                tops_per_w: 1.0,
                tops_per_mm2: 1.0,
            },
        }
    }

    #[test]
    fn a_clean_two_shard_run_folds_to_done() {
        let mut m = CampaignModel::new();
        m.apply(&start(4, 2, 0));
        for shard in 0..2 {
            m.apply(&Event::ShardStart {
                shard,
                cells: 2,
                skipped: 0,
                host: None,
            });
        }
        m.apply(&cell_done(0, 0, false));
        m.apply(&cell_done(0, 1, true));
        m.apply(&cell_done(1, 2, false));
        m.apply(&cell_done(1, 3, false));
        for shard in 0..2 {
            m.apply(&Event::ShardDone {
                shard,
                simulated: 1,
                cached: 1,
                elapsed_ms: 50,
                host: None,
            });
        }
        m.apply(&Event::CampaignDone {
            cells: 4,
            elapsed_ms: 80,
        });
        assert_eq!(m.done(), 4);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.retries, 0);
        assert!(m.state.is_terminal());
        assert_eq!(m.state.tag(), "done");
        assert_eq!(m.elapsed_ms(), 80);
        assert_eq!(m.cumulative_cells_per_sec(), Some(4.0 * 1000.0 / 80.0));
        let line = m.summary().write();
        assert!(line.contains("\"format\":\"griffin-watch-summary/1\""));
        assert!(line.contains("\"done\":4"));
    }

    #[test]
    fn retry_lifecycle_counts_and_failure_log() {
        let mut m = CampaignModel::new();
        m.apply(&start(2, 1, 0));
        m.apply(&Event::ShardStart {
            shard: 0,
            cells: 2,
            skipped: 0,
            host: None,
        });
        m.apply(&cell_done(0, 0, false));
        m.apply(&Event::ShardFailed {
            shard: 0,
            attempt: 0,
            msg: "worker exited".into(),
            host: None,
        });
        m.apply(&Event::CellsRequeued { shard: 0, cells: 1 });
        m.apply(&Event::ShardRetried {
            shard: 0,
            attempt: 1,
            backoff_ms: 0,
            host: None,
        });
        m.apply(&Event::ShardStart {
            shard: 0,
            cells: 1,
            skipped: 1,
            host: None,
        });
        m.apply(&cell_done(0, 1, false));
        m.apply(&Event::CampaignDone {
            cells: 2,
            elapsed_ms: 10,
        });
        assert_eq!(m.retries, 1);
        assert_eq!(m.requeued_cells, 1);
        assert_eq!(m.failures.len(), 1);
        assert_eq!(m.failures[0].msg, "worker exited");
        assert_eq!(m.done(), 2, "cells from the failed attempt still count");
        let s = &m.shards[&0];
        assert_eq!(s.attempt, 1);
        assert_eq!(s.done, 1, "per-attempt progress reset on the retry");
    }

    #[test]
    fn host_liveness_folds_from_the_stream() {
        let mut m = CampaignModel::new();
        m.apply(&start(4, 2, 0));
        m.apply(&Event::ShardStart {
            shard: 0,
            cells: 2,
            skipped: 0,
            host: Some("h0".into()),
        });
        m.apply(&Event::ShardStart {
            shard: 1,
            cells: 2,
            skipped: 0,
            host: Some("h1".into()),
        });
        m.apply(&Event::ShardFailed {
            shard: 1,
            attempt: 0,
            msg: "stream ended".into(),
            host: Some("h1".into()),
        });
        m.apply(&Event::HostLost {
            host: "h1".into(),
            shards: 1,
        });
        // The shard moves to the survivor.
        m.apply(&Event::ShardRetried {
            shard: 1,
            attempt: 1,
            backoff_ms: 250,
            host: Some("h0".into()),
        });
        m.apply(&Event::HostRetired { host: "h0".into() });
        assert_eq!(m.hosts.len(), 2);
        assert_eq!(m.hosts["h1"].state, HostState::Lost);
        assert_eq!(m.hosts["h1"].shards_moved, 1);
        assert_eq!(m.hosts["h1"].failures, 1);
        assert_eq!(m.hosts["h0"].state, HostState::Retired);
        assert_eq!(m.shards[&1].host.as_deref(), Some("h0"), "moved");
        // A late retirement never upgrades a loss.
        m.apply(&Event::HostRetired { host: "h1".into() });
        assert_eq!(m.hosts["h1"].state, HostState::Lost);
        let line = m.summary().write();
        assert!(line.contains("\"hosts_lost\":1"), "{line}");
        assert!(
            line.contains("\"host\":\"h1\",\"state\":\"lost\"")
                || line.contains("\"state\":\"lost\""),
            "{line}"
        );
        // Host-free streams keep their summary host-free.
        let mut plain = CampaignModel::new();
        plain.apply(&start(1, 1, 0));
        assert!(!plain.summary().write().contains("\"hosts\":["));
    }

    #[test]
    fn resume_restart_resets_but_counts() {
        let mut m = CampaignModel::new();
        m.apply(&start(3, 1, 0));
        m.apply(&cell_done(0, 0, false));
        m.apply(&Event::CampaignFailed { msg: "kill".into() });
        // The resume appends a fresh header claiming the journaled cell.
        m.apply(&start(3, 1, 1));
        assert_eq!(m.restarts, 1);
        assert_eq!(m.done(), 1, "journal-resumed cells count as done");
        m.apply(&cell_done(0, 1, false));
        m.apply(&cell_done(0, 2, false));
        m.apply(&Event::CampaignDone {
            cells: 3,
            elapsed_ms: 5,
        });
        assert_eq!(m.done(), 3);
        assert_eq!(m.state.tag(), "done");
    }

    #[test]
    fn fold_text_skips_torn_tail_and_counts_bad_lines() {
        let text = format!(
            "{}\n{}\nnot-json\n{}",
            start(2, 1, 0).to_line(),
            cell_done(0, 0, false).to_line(),
            "{\"ev\":\"cell_done\",\"torn" // no newline: not yet a line
        );
        let m = CampaignModel::fold_text(&text);
        assert_eq!(m.done(), 1);
        assert_eq!(m.parse_errors, 1, "malformed complete line skipped");
        assert_eq!(m.state.tag(), "running");
    }

    #[test]
    fn heartbeat_enrichment_feeds_shard_view() {
        let mut m = CampaignModel::new();
        m.apply(&start(10, 1, 0));
        m.apply(&Event::ShardStart {
            shard: 0,
            cells: 10,
            skipped: 0,
            host: None,
        });
        m.apply(&Event::Heartbeat {
            shard: 0,
            done: 4,
            total: 10,
            elapsed_ms: 400,
            cached: 3,
        });
        let s = &m.shards[&0];
        assert_eq!((s.done, s.cached, s.elapsed_ms), (4, 3, 400));
        assert_eq!(m.elapsed_ms(), 400, "live elapsed from slowest shard");
    }

    #[test]
    fn eta_is_na_at_campaign_start_and_under_zero_rate() {
        let mut m = CampaignModel::new();
        assert_eq!(m.eta_ms(), None, "no campaign, no estimate");

        // Campaign start: zero elapsed, zero completions. The summary
        // must say "n/a" — never 0 and never a saturated huge value.
        m.apply(&start(100, 1, 0));
        assert_eq!(m.eta_ms(), None);
        assert!(m.summary().write().contains("\"eta_ms\":\"n/a\""));

        // Time passing with zero completions (a stalled fleet) is a
        // zero rate: still "n/a", not a division blow-up.
        m.apply(&Event::ShardStart {
            shard: 0,
            cells: 100,
            skipped: 0,
            host: None,
        });
        m.apply(&Event::Heartbeat {
            shard: 0,
            done: 0,
            total: 100,
            elapsed_ms: 5000,
            cached: 0,
        });
        assert_eq!(m.eta_ms(), None, "zero rate has no projection");
        assert!(m.summary().write().contains("\"eta_ms\":\"n/a\""));
    }

    #[test]
    fn eta_projects_remaining_cells_then_clears_when_terminal() {
        let mut m = CampaignModel::new();
        m.apply(&start(10, 1, 0));
        m.apply(&Event::ShardStart {
            shard: 0,
            cells: 10,
            skipped: 0,
            host: None,
        });
        for c in 0..4 {
            m.apply(&cell_done(0, c, false));
        }
        m.apply(&Event::Heartbeat {
            shard: 0,
            done: 4,
            total: 10,
            elapsed_ms: 2000,
            cached: 0,
        });
        // 4 cells in 2 s → 2 cells/s → 6 remaining ≈ 3000 ms.
        assert_eq!(m.eta_ms(), Some(3000));
        assert!(m.summary().write().contains("\"eta_ms\":3000"));

        // A finished campaign has no ETA, even though the rate is known.
        m.apply(&Event::CampaignDone {
            cells: 10,
            elapsed_ms: 5000,
        });
        assert_eq!(m.eta_ms(), None);
        assert!(m.summary().write().contains("\"eta_ms\":\"n/a\""));
    }

    #[test]
    fn rate_tracker_zero_elapsed_and_zero_rate_windows_yield_no_eta() {
        // One observation: no window yet, no rate, no ETA.
        let mut r = RateTracker::new(1000.0);
        r.observe(5, 0);
        assert_eq!(r.cells_per_sec(), None);
        assert_eq!(r.eta_ms(100), None, "single observation has no ETA");

        // Zero-elapsed window (same timestamp): re-seeds instead of
        // dividing by zero; still no ETA.
        r.observe(5, 10);
        assert_eq!(r.cells_per_sec(), None);
        assert_eq!(r.eta_ms(100), None, "zero-elapsed window has no ETA");

        // Zero-rate window (time passes, nothing completes): the EMA is
        // exactly 0, which must read as "n/a" — not ETA 0, not a
        // saturated huge value.
        let mut idle = RateTracker::new(1000.0);
        idle.observe(0, 0);
        idle.observe(1000, 0);
        assert_eq!(idle.cells_per_sec(), Some(0.0));
        assert_eq!(idle.eta_ms(100), None, "zero rate has no ETA");
        // And with nothing remaining the ETA is trivially 0 once a real
        // rate exists — never "n/a" misreported the other way.
        idle.observe(2000, 10);
        assert_eq!(idle.eta_ms(0), Some(0));
    }

    #[test]
    fn rate_tracker_smooths_and_projects() {
        let mut r = RateTracker::new(1000.0);
        assert_eq!(r.cells_per_sec(), None);
        r.observe(0, 0);
        r.observe(1000, 10); // 10 cells/s instantaneous
        let first = r.cells_per_sec().unwrap();
        assert!((first - 10.0).abs() < 1e-9, "first window seeds the EMA");
        r.observe(2000, 30); // 20 cells/s window pulls the EMA up
        let second = r.cells_per_sec().unwrap();
        assert!(second > first && second < 20.0);
        let eta = r.eta_ms(100).unwrap();
        assert!(eta > 100 * 1000 / 20 && eta < 100 * 1000 / 10);
        // Clock stall and counter reset re-seed rather than blow up.
        r.observe(2000, 30);
        r.observe(3000, 5);
        assert_eq!(r.cells_per_sec(), None, "reset forgets the stale rate");
    }
}
