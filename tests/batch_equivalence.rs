//! Batch-equivalence properties: `Accelerator::run_batch` over K
//! seed-variant workloads must be **bitwise** identical to K independent
//! `Accelerator::run_with` calls — for every mode (word-parallel batched
//! builders and plane-sequential fallbacks alike), with and without an
//! active grid-reuse scope, at any batch width. This is the contract
//! that lets the sweep executor batch opportunistically: batching is an
//! execution strategy, never a result change.

use griffin::core::accelerator::{Accelerator, RunReport, Workload};
use griffin::core::arch::ArchSpec;
use griffin::core::category::DnnCategory;
use griffin::sim::config::{Fidelity, SimConfig};
use griffin::sim::layer::GemmLayer;
use griffin::sim::scratch::SimScratch;
use griffin::tensor::shape::GemmShape;
use proptest::prelude::*;

/// One seed variant: the same named network shape with masks drawn from
/// `seed`.
fn variant(
    category: DnnCategory,
    shapes: &[(usize, usize, usize)],
    da: f64,
    db: f64,
    seed: u64,
) -> Workload {
    let layers = shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, n, k))| {
            GemmLayer::with_densities(
                GemmShape::new(m, n, k).unwrap(),
                da,
                db,
                seed.wrapping_mul(1000).wrapping_add(i as u64),
            )
            .unwrap()
        })
        .collect();
    Workload::new(format!("variant-{seed}"), category, layers)
}

/// Asserts two run reports are bitwise identical, down to every per-layer
/// counter.
fn assert_reports_identical(solo: &RunReport, batched: &RunReport, what: &str) {
    assert_eq!(
        solo.speedup.to_bits(),
        batched.speedup.to_bits(),
        "{what}: speedup"
    );
    assert_eq!(
        solo.effective_tops_per_w.to_bits(),
        batched.effective_tops_per_w.to_bits(),
        "{what}: tops/W"
    );
    assert_eq!(
        solo.effective_tops_per_mm2.to_bits(),
        batched.effective_tops_per_mm2.to_bits(),
        "{what}: tops/mm2"
    );
    assert_eq!(
        solo.network.layers.len(),
        batched.network.layers.len(),
        "{what}: layer count"
    );
    for (i, (a, b)) in solo
        .network
        .layers
        .iter()
        .zip(&batched.network.layers)
        .enumerate()
    {
        assert_eq!(
            a.dense_cycles, b.dense_cycles,
            "{what}: layer {i} dense_cycles"
        );
        assert_eq!(
            a.schedule_cycles.to_bits(),
            b.schedule_cycles.to_bits(),
            "{what}: layer {i} schedule_cycles"
        );
        assert_eq!(
            a.bw_floor_cycles.to_bits(),
            b.bw_floor_cycles.to_bits(),
            "{what}: layer {i} bw_floor_cycles"
        );
        assert_eq!(
            a.cycles.to_bits(),
            b.cycles.to_bits(),
            "{what}: layer {i} cycles"
        );
        assert_eq!(
            a.effectual_ops.to_bits(),
            b.effectual_ops.to_bits(),
            "{what}: layer {i} effectual_ops"
        );
        assert_eq!(
            a.borrowed_ops.to_bits(),
            b.borrowed_ops.to_bits(),
            "{what}: layer {i} borrowed_ops"
        );
        assert_eq!(
            a.starved_cycles.to_bits(),
            b.starved_cycles.to_bits(),
            "{what}: layer {i} starved_cycles"
        );
        assert_eq!(a.sampled, b.sampled, "{what}: layer {i} sampled flag");
    }
}

/// Runs the batch three ways (solo runs, unscoped batch, scoped batch)
/// and checks all agree plane-by-plane.
fn check_batch(arch: ArchSpec, cfg: SimConfig, workloads: &[Workload]) {
    let acc = Accelerator::new(arch, cfg);
    let solo: Vec<RunReport> = workloads
        .iter()
        .map(|w| acc.run_with(w, &mut SimScratch::new()))
        .collect();

    let planes: Vec<&Workload> = workloads.iter().collect();
    let unscoped = acc.run_batch(&planes, &mut SimScratch::new());
    assert_eq!(unscoped.len(), workloads.len());
    for (p, (s, b)) in solo.iter().zip(&unscoped).enumerate() {
        assert_reports_identical(s, b, &format!("unscoped plane {p}"));
    }

    // Under a reuse scope the batch memoizes per-plane tile grids; the
    // second pass replays entirely from cache and must still agree.
    let mut scoped = SimScratch::new();
    scoped.begin_reuse_scope(0xBA7C4);
    for pass in 0..2 {
        let batched = acc.run_batch(&planes, &mut scoped);
        for (p, (s, b)) in solo.iter().zip(&batched).enumerate() {
            assert_reports_identical(s, b, &format!("scoped pass {pass} plane {p}"));
        }
    }
}

fn arch_for(category: DnnCategory) -> Vec<ArchSpec> {
    let mut archs = vec![ArchSpec::dense(), ArchSpec::griffin()];
    match category {
        DnnCategory::A => archs.push(ArchSpec::sparse_a_star()),
        DnnCategory::B => archs.push(ArchSpec::sparse_b_star()),
        _ => archs.push(ArchSpec::sparse_ab_star()),
    }
    archs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// K seed variants of one workload, batched, equal K solo runs —
    /// across categories (so both the word-parallel SparseA/SparseB
    /// kernels and the dual-pipeline plane-sequential fallback run),
    /// exact and sampled fidelity, and batch widths 1..=4.
    #[test]
    fn run_batch_equals_independent_runs(
        seed in 0u64..500,
        planes in 1usize..5,
        cat_pick in 0usize..3,
        da in 0.3f64..1.0,
        db in 0.1f64..0.9,
        sampled in proptest::bool::ANY,
    ) {
        let category = [DnnCategory::A, DnnCategory::B, DnnCategory::AB][cat_pick];
        let shapes = [(16, 128, 32), (32, 64, 64)];
        let workloads: Vec<Workload> = (0..planes)
            .map(|p| variant(category, &shapes, da, db, seed + p as u64))
            .collect();
        let cfg = SimConfig {
            fidelity: if sampled {
                Fidelity::Sampled { tiles: 2, seed: 7 }
            } else {
                Fidelity::Exact
            },
            ..SimConfig::default()
        };
        for arch in arch_for(category) {
            check_batch(arch, cfg, &workloads);
        }
    }
}

/// Runs a whole architecture family three ways (per-accelerator
/// `run_batch`, unscoped family batch, scoped family batch) and checks
/// every `[accelerator][workload]` report agrees bitwise.
fn check_family(archs: &[ArchSpec], cfg: SimConfig, workloads: &[Workload]) {
    let accels: Vec<Accelerator> = archs
        .iter()
        .map(|a| Accelerator::new(a.clone(), cfg))
        .collect();
    let refs: Vec<&Accelerator> = accels.iter().collect();
    let planes: Vec<&Workload> = workloads.iter().collect();
    let solo: Vec<Vec<RunReport>> = accels
        .iter()
        .map(|a| a.run_batch(&planes, &mut SimScratch::new()))
        .collect();

    let unscoped = Accelerator::run_family_batch(&refs, &planes, &mut SimScratch::new());
    assert_eq!(unscoped.len(), archs.len());
    for (a, (srow, brow)) in solo.iter().zip(&unscoped).enumerate() {
        assert_eq!(brow.len(), workloads.len());
        for (p, (s, b)) in srow.iter().zip(brow).enumerate() {
            assert_reports_identical(s, b, &format!("family unscoped accel {a} plane {p}"));
        }
    }

    // Under a reuse scope the family shares memoized grids *and* the
    // window-keyed schedule cache; a second pass replays from cache and
    // must still agree.
    let mut scoped = SimScratch::new();
    scoped.begin_reuse_scope(0xFA417);
    for pass in 0..2 {
        let batched = Accelerator::run_family_batch(&refs, &planes, &mut scoped);
        for (a, (srow, brow)) in solo.iter().zip(&batched).enumerate() {
            for (p, (s, b)) in srow.iter().zip(brow).enumerate() {
                assert_reports_identical(
                    s,
                    b,
                    &format!("family scoped pass {pass} accel {a} plane {p}"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A whole architecture family batched through one
    /// `run_family_batch` call equals per-accelerator `run_batch` calls
    /// (themselves pinned to solo runs above) — over random single-
    /// sparse families with shared-reach members, duplicates, and both
    /// shuffle flags, on K seed-variant workloads.
    #[test]
    fn run_family_batch_equals_independent_runs(
        seed in 0u64..300,
        planes in 1usize..4,
        b_side in proptest::bool::ANY,
        picks in proptest::collection::vec((1usize..5, 0usize..3, 0usize..2, proptest::bool::ANY), 2..6),
        da in 0.3f64..1.0,
        db in 0.1f64..0.9,
    ) {
        use griffin::sim::window::BorrowWindow;
        let category = if b_side { DnnCategory::B } else { DnnCategory::A };
        let archs: Vec<ArchSpec> = picks
            .iter()
            .map(|&(d1, d2, d3, shuffle)| {
                let w = BorrowWindow::new(d1, d2, d3);
                if b_side {
                    ArchSpec::sparse_b(w, shuffle)
                } else {
                    ArchSpec::sparse_a(w, shuffle)
                }
            })
            .collect();
        let workloads: Vec<Workload> = (0..planes)
            .map(|p| variant(category, &[(16, 128, 32), (32, 64, 64)], da, db, seed + p as u64))
            .collect();
        let cfg = SimConfig {
            fidelity: Fidelity::Sampled { tiles: 2, seed: 7 },
            ..SimConfig::default()
        };
        check_family(&archs, cfg, &workloads);
    }
}

#[test]
fn mixed_mode_family_falls_back_and_still_matches() {
    // Dense + dual-sparse + single-sparse in one family: no shared
    // single-sparse axis, so the family call must fall back per
    // accelerator — and still match bitwise.
    let archs = [
        ArchSpec::dense(),
        ArchSpec::griffin(),
        ArchSpec::sparse_b_star(),
    ];
    let workloads = [
        variant(DnnCategory::B, &[(16, 128, 32)], 1.0, 0.25, 31),
        variant(DnnCategory::B, &[(16, 128, 32)], 1.0, 0.25, 32),
    ];
    check_family(&archs, SimConfig::default(), &workloads);
}

#[test]
fn identical_family_members_share_all_but_one_schedule() {
    // K family members with the *same* window and shuffle flag resolve
    // to one distinct schedule per (tile, plane): the telemetry must
    // report exactly K−1 of every K window requests as shared, and the
    // reports must still equal solo runs. (The real 54-arch SparseB
    // family has 54 distinct (window, shuffle) combos, so its sharing
    // comes only from saturating-depth replay on structured masks —
    // this constructed family pins the cache/dedup half of the
    // counters.)
    let k = 5;
    let arch = ArchSpec::sparse_b_star();
    let archs: Vec<ArchSpec> = (0..k).map(|_| arch.clone()).collect();
    let workloads = [
        variant(DnnCategory::B, &[(16, 128, 32)], 1.0, 0.3, 41),
        variant(DnnCategory::B, &[(16, 128, 32)], 1.0, 0.3, 42),
    ];
    check_family(&archs, SimConfig::default(), &workloads);

    let accels: Vec<Accelerator> = archs
        .iter()
        .map(|a| Accelerator::new(a.clone(), SimConfig::default()))
        .collect();
    let refs: Vec<&Accelerator> = accels.iter().collect();
    let planes: Vec<&Workload> = workloads.iter().collect();
    let mut scratch = SimScratch::new();
    scratch.begin_reuse_scope(0x54A11);
    let _ = Accelerator::run_family_batch(&refs, &planes, &mut scratch);
    let stats = scratch.share_stats();
    assert!(stats.multi_passes > 0, "family must schedule something");
    assert_eq!(
        stats.multi_windows,
        stats.multi_passes * k as u64,
        "every distinct schedule serves K identical members"
    );
    assert_eq!(
        stats.shared(),
        stats.multi_passes * (k as u64 - 1),
        "K−1 of every K window requests are shared"
    );
    assert_eq!(
        stats.sched_cache_hits + stats.multi_replayed,
        stats.shared(),
        "shares are either cache hits or replays"
    );
}

#[test]
fn empty_batch_returns_no_reports() {
    let acc = Accelerator::with_defaults(ArchSpec::griffin());
    assert!(acc.run_batch(&[], &mut SimScratch::new()).is_empty());
    assert!(
        Accelerator::run_family_batch(&[&acc], &[], &mut SimScratch::new())
            .iter()
            .all(Vec::is_empty)
    );
}

#[test]
fn mixed_category_batch_falls_back_per_plane() {
    let shapes = [(16, 128, 32)];
    let a = variant(DnnCategory::A, &shapes, 0.5, 1.0, 11);
    let b = variant(DnnCategory::B, &shapes, 1.0, 0.2, 12);
    check_batch(
        ArchSpec::griffin(),
        SimConfig::default(),
        &[a.clone(), b.clone()],
    );

    // Explicitly: the mixed batch equals the per-plane solo runs.
    let acc = Accelerator::with_defaults(ArchSpec::griffin());
    let batched = acc.run_batch(&[&a, &b], &mut SimScratch::new());
    let solo_a = acc.run_with(&a, &mut SimScratch::new());
    let solo_b = acc.run_with(&b, &mut SimScratch::new());
    assert_reports_identical(&solo_a, &batched[0], "mixed plane 0");
    assert_reports_identical(&solo_b, &batched[1], "mixed plane 1");
}

#[test]
fn uneven_shapes_fall_back_and_still_match() {
    // Same category, different per-plane layer shapes: not batchable
    // word-parallel, must take the plane-sequential path and still match.
    let a = variant(DnnCategory::B, &[(16, 128, 32)], 1.0, 0.3, 21);
    let b = variant(DnnCategory::B, &[(32, 64, 64)], 1.0, 0.3, 22);
    check_batch(ArchSpec::sparse_b_star(), SimConfig::default(), &[a, b]);
}
