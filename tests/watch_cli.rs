//! End-to-end CLI tests of the observability layer: `fleet watch`
//! (one-shot JSON, live follow) and `fleet report --html`, pinned
//! against `events.jsonl` ground truth — including on a chaos fleet
//! whose worker is killed and retried mid-campaign.

use std::path::{Path, PathBuf};
use std::process::Command;

use griffin::sweep::json::Json;

const CLI: &str = env!("CARGO_BIN_EXE_griffin-cli");

/// Tiny fast campaign: synth workload, one seed, fan-in 3 family
/// (7 cells).
const CAMPAIGN: &[&str] = &["synth", "b", "--tiles", "2", "--seeds", "1", "--fanin", "3"];

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("griffin-watch-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], cwd: &Path) -> std::process::Output {
    let out = Command::new(CLI)
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn griffin-cli");
    assert!(
        out.status.success(),
        "`griffin-cli {}` failed:\n{}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Parses the one-line `griffin-watch-summary/1` JSON from stdout.
fn summary_of(out: &std::process::Output) -> Json {
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text
        .lines()
        .find(|l| l.contains("griffin-watch-summary/1"))
        .unwrap_or_else(|| panic!("no summary line in: {text}"));
    Json::parse(line).expect("summary parses")
}

fn field(j: &Json, key: &str) -> f64 {
    j.req(key).and_then(Json::as_f64).unwrap()
}

#[test]
fn watch_json_matches_event_stream_ground_truth_on_a_chaos_fleet() {
    let dir = scratch_dir("chaos");

    // A spawned fleet whose shard-1 worker dies after one cell: the
    // coordinator retries it exactly once.
    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend([
        "--shards",
        "2",
        "--spawn",
        "--dir",
        "fs",
        "--heartbeat",
        "1",
    ]);
    let out = Command::new(CLI)
        .args(&fleet_args)
        .env("GRIFFIN_FAULT", "kill:shard=1:after=1")
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "chaos fleet must recover:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let events = std::fs::read_to_string(dir.join("fs/events.jsonl")).unwrap();
    let count = |marker: &str| events.lines().filter(|l| l.contains(marker)).count();

    let watch = run(&["fleet", "watch", "fs", "--json"], &dir);
    let s = summary_of(&watch);

    // The acceptance pin: every summary counter equals what grep finds
    // in the stream itself.
    assert_eq!(
        field(&s, "retries") as usize,
        1,
        "killed once, retried once"
    );
    assert_eq!(
        field(&s, "retries") as usize,
        count("\"ev\":\"shard_retried\""),
    );
    assert_eq!(field(&s, "done") as usize, field(&s, "cells") as usize);
    assert_eq!(field(&s, "cells") as usize, 7, "synth fan-in 3 grid");
    assert_eq!(
        field(&s, "cell_events") as usize,
        count("\"ev\":\"cell_done\""),
    );
    assert_eq!(
        field(&s, "cache_hits") as usize,
        events
            .lines()
            .filter(|l| l.contains("\"ev\":\"cell_done\"") && l.contains("\"cached\":true"))
            .count(),
    );
    assert_eq!(
        field(&s, "failures") as usize,
        count("\"ev\":\"shard_failed\""),
    );
    assert_eq!(field(&s, "parse_errors") as usize, 0);
    assert_eq!(s.req("state").unwrap().as_str().unwrap(), "done");

    // The v2 heartbeat enrichment is on the wire.
    let hb = events
        .lines()
        .find(|l| l.contains("\"ev\":\"heartbeat\""))
        .expect("--heartbeat 1 produces heartbeats");
    assert!(hb.contains("\"elapsed_ms\":"), "enriched heartbeat: {hb}");
    assert!(hb.contains("\"cached\":"), "enriched heartbeat: {hb}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn live_watch_follows_a_running_chaos_fleet_to_campaign_done() {
    let dir = scratch_dir("live");

    // Start the fleet (worker killed + retried mid-run) WITHOUT waiting.
    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend([
        "--shards",
        "2",
        "--spawn",
        "--dir",
        "fs",
        "--heartbeat",
        "1",
    ]);
    let mut fleet = Command::new(CLI)
        .args(&fleet_args)
        .env("GRIFFIN_FAULT", "kill:shard=1:after=1")
        .current_dir(&dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Attach a live watcher concurrently; it must ride through the
    // kill/retry and exit 0 at the terminal campaign_done.
    let watch = Command::new(CLI)
        .args([
            "fleet",
            "watch",
            "fs",
            "--no-tty",
            "--interval",
            "25",
            "--timeout",
            "120000",
        ])
        .current_dir(&dir)
        .output()
        .unwrap();
    let fleet_status = fleet.wait().unwrap();
    assert!(fleet_status.success(), "chaos fleet must recover");
    let stdout = String::from_utf8_lossy(&watch.stdout);
    let stderr = String::from_utf8_lossy(&watch.stderr);
    assert!(
        watch.status.success(),
        "live watch must exit 0 on campaign_done:\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.lines().last().unwrap().contains("state=done"),
        "line mode ends in the terminal state: {stdout}"
    );
    assert!(
        stdout.contains("done=7/7"),
        "final progress reaches the full grid: {stdout}"
    );
    assert!(
        stderr.contains("campaign done"),
        "human confirmation on stderr: {stderr}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn html_report_is_emitted_and_self_contained() {
    let dir = scratch_dir("html");

    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend(["--shards", "2", "--dir", "fs"]);
    run(&fleet_args, &dir);

    run(&["fleet", "report", "fs", "--html", "page.html"], &dir);
    let page = std::fs::read_to_string(dir.join("page.html")).unwrap();
    assert!(page.starts_with("<!DOCTYPE html>"));
    assert!(
        !page.contains("http"),
        "self-contained page references nothing external"
    );
    assert!(page.contains("sweep-synth-b"), "campaign name on the page");
    assert!(page.contains("7 of 7 cells (100.0%)"), "progress rendered");
    assert!(page.contains("griffin-watch-summary/1"), "summary embedded");

    // Default output path: <dir>/report.html.
    run(&["fleet", "report", "fs"], &dir);
    assert!(dir.join("fs/report.html").is_file());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn watch_json_follow_streams_summaries_and_watch_errors_cleanly() {
    let dir = scratch_dir("follow");

    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend(["--shards", "2", "--dir", "fs"]);
    run(&fleet_args, &dir);

    // --json-follow on a finished stream: at least one summary line,
    // the last one terminal.
    let out = run(
        &[
            "fleet",
            "watch",
            "fs",
            "--json-follow",
            "--interval",
            "25",
            "--timeout",
            "60000",
        ],
        &dir,
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let last = Json::parse(text.lines().last().unwrap()).unwrap();
    assert_eq!(last.req("state").unwrap().as_str().unwrap(), "done");
    assert_eq!(field(&last, "done") as usize, 7);

    // One-shot --json on a missing stream is a loud failure, not a
    // silent empty summary.
    let missing = Command::new(CLI)
        .args(["fleet", "watch", "no-such-dir", "--json"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(!missing.status.success());
    assert!(
        String::from_utf8_lossy(&missing.stderr).contains("cannot read event stream"),
        "stderr names the problem"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
