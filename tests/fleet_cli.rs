//! End-to-end CLI test of `griffin-cli fleet`: subprocess shard
//! workers, journaled resume, and byte-identity with `griffin-cli
//! sweep` — the acceptance pin of the fleet subsystem at the binary
//! boundary.

use std::path::{Path, PathBuf};
use std::process::Command;

const CLI: &str = env!("CARGO_BIN_EXE_griffin-cli");

/// Tiny fast campaign: synth workload, one seed, fan-in 3 family
/// (7 cells).
const CAMPAIGN: &[&str] = &["synth", "b", "--tiles", "2", "--seeds", "1", "--fanin", "3"];

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("griffin-fleet-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], cwd: &Path) -> std::process::Output {
    let out = Command::new(CLI)
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn griffin-cli");
    assert!(
        out.status.success(),
        "`griffin-cli {}` failed:\n{}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn spawned_fleet_matches_sweep_and_resumes_from_the_journal() {
    let dir = scratch_dir("spawn");

    let mut sweep_args = vec!["sweep"];
    sweep_args.extend(CAMPAIGN);
    sweep_args.extend([
        "--workers",
        "2",
        "--csv",
        "single.csv",
        "--json",
        "single.json",
    ]);
    run(&sweep_args, &dir);

    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend([
        "--shards",
        "2",
        "--spawn",
        "--dir",
        "fs",
        "--csv",
        "fleet.csv",
        "--json",
        "fleet.json",
    ]);
    run(&fleet_args, &dir);

    let single_csv = std::fs::read(dir.join("single.csv")).unwrap();
    assert_eq!(
        single_csv,
        std::fs::read(dir.join("fleet.csv")).unwrap(),
        "spawned fleet CSV must be byte-identical to sweep"
    );
    assert_eq!(
        std::fs::read(dir.join("single.json")).unwrap(),
        std::fs::read(dir.join("fleet.json")).unwrap(),
        "spawned fleet JSON must be byte-identical to sweep"
    );

    // Interrupt simulation: drop the journal's last completed cell,
    // then resume (still spawned) and compare again.
    let jpath = dir.join("fs/journal.jsonl");
    let text = std::fs::read_to_string(&jpath).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 2, "journal has header + entries");
    lines.pop();
    std::fs::write(&jpath, format!("{}\n", lines.join("\n"))).unwrap();

    let mut resume_args = vec!["fleet"];
    resume_args.extend(CAMPAIGN);
    resume_args.extend([
        "--shards",
        "2",
        "--spawn",
        "--resume",
        "--dir",
        "fs",
        "--csv",
        "resumed.csv",
    ]);
    run(&resume_args, &dir);
    assert_eq!(
        single_csv,
        std::fs::read(dir.join("resumed.csv")).unwrap(),
        "resumed fleet CSV must be byte-identical to sweep"
    );

    // The event stream is valid JSONL with a campaign_done terminator.
    let events = std::fs::read_to_string(dir.join("fs/events.jsonl")).unwrap();
    let last = events.lines().last().unwrap();
    assert!(
        last.contains("\"campaign_done\""),
        "stream ends the campaign: {last}"
    );
    for line in events.lines() {
        griffin::fleet::Event::parse_line(line).expect("every stream line parses");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_worker_is_retried_and_the_report_still_matches_sweep() {
    let dir = scratch_dir("chaos");

    let mut sweep_args = vec!["sweep"];
    sweep_args.extend(CAMPAIGN);
    sweep_args.extend(["--workers", "2", "--csv", "single.csv"]);
    run(&sweep_args, &dir);

    // Kill shard 1's worker after one completed cell; the coordinator
    // must re-queue its remaining cells onto a respawned worker and
    // still produce the byte-identical report.
    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend([
        "--shards",
        "3",
        "--spawn",
        "--dir",
        "fs",
        "--csv",
        "fleet.csv",
    ]);
    let out = Command::new(CLI)
        .args(&fleet_args)
        .env("GRIFFIN_FAULT", "kill:shard=1:after=1")
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "chaos fleet must recover:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(dir.join("single.csv")).unwrap(),
        std::fs::read(dir.join("fleet.csv")).unwrap(),
        "a retried campaign is byte-identical to sweep"
    );

    let events = std::fs::read_to_string(dir.join("fs/events.jsonl")).unwrap();
    for marker in [
        "\"ev\":\"shard_failed\"",
        "\"ev\":\"cells_requeued\"",
        "\"ev\":\"shard_retried\"",
        "griffin-fleet-events/2",
    ] {
        assert!(events.contains(marker), "stream must record {marker}");
    }
    let last = events.lines().last().unwrap();
    assert!(last.contains("\"campaign_done\""), "terminal event: {last}");
    for line in events.lines() {
        griffin::fleet::Event::parse_line(line).expect("every stream line parses");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn exhausted_retries_fail_with_a_terminal_campaign_failed() {
    let dir = scratch_dir("chaos-exhaust");
    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend([
        "--shards",
        "2",
        "--spawn",
        "--dir",
        "fs",
        "--max-shard-retries",
        "1",
    ]);
    let out = Command::new(CLI)
        .args(&fleet_args)
        .env("GRIFFIN_FAULT", "kill:shard=0:after=0:attempt=any")
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success(), "a shard that always dies must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("retries exhausted"), "stderr: {stderr}");

    let events = std::fs::read_to_string(dir.join("fs/events.jsonl")).unwrap();
    let last = events.lines().last().unwrap();
    assert!(
        last.contains("\"campaign_failed\""),
        "failures are terminal too: {last}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_garbage_fault_plan_is_refused_loudly() {
    let dir = scratch_dir("chaos-typo");
    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend(["--shards", "2", "--dir", "fs"]);
    let out = Command::new(CLI)
        .args(&fleet_args)
        .env("GRIFFIN_FAULT", "kill:shard=one")
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "a typoed chaos experiment must not run a clean campaign"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("GRIFFIN_FAULT"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fleet_rejects_resuming_a_different_campaign_grid() {
    let dir = scratch_dir("mismatch");
    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend(["--shards", "2", "--dir", "fs"]);
    run(&fleet_args, &dir);

    // Same state dir, different seed axis → different grid → refused.
    let out = Command::new(CLI)
        .args([
            "fleet", "synth", "b", "--tiles", "2", "--seeds", "2", "--fanin", "3", "--shards", "2",
            "--dir", "fs", "--resume",
        ])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("different campaign"),
        "stderr should explain the mismatch: {stderr}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
