//! End-to-end CLI test of `griffin-cli fleet`: subprocess shard
//! workers, journaled resume, and byte-identity with `griffin-cli
//! sweep` — the acceptance pin of the fleet subsystem at the binary
//! boundary.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const CLI: &str = env!("CARGO_BIN_EXE_griffin-cli");

/// Tiny fast campaign: synth workload, one seed, fan-in 3 family
/// (7 cells).
const CAMPAIGN: &[&str] = &["synth", "b", "--tiles", "2", "--seeds", "1", "--fanin", "3"];

/// The [`CAMPAIGN`] tokens as the spec the CLI builds from them — the
/// same construction `build_sweep_spec` performs, so tests can compute
/// the deterministic shard plan (and host assignment) the coordinator
/// will use.
fn campaign_spec() -> griffin::sweep::SweepSpec {
    let mut spec = griffin::sweep::SweepSpec::new("sweep-synth-b")
        .category(griffin::core::category::DnnCategory::B)
        .seeds([1])
        .sim(griffin::sim::config::SimConfig {
            fidelity: griffin::sim::config::Fidelity::Sampled {
                tiles: 2,
                seed: 0xBEEF,
            },
            ..Default::default()
        });
    spec.workloads
        .push(griffin::sweep::scenario::parse_workload("synth").expect("synth token"));
    spec.arch(griffin::core::arch::ArchSpec::dense())
        .family(griffin::sweep::ArchFamily::SparseB { max_fanin: 3 })
}

/// Polls `path` until it contains `needle` (files the campaign is
/// still writing), or gives up after `timeout`.
fn wait_for_marker(path: &Path, needle: &str, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if std::fs::read_to_string(path).is_ok_and(|s| s.contains(needle)) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("griffin-fleet-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], cwd: &Path) -> std::process::Output {
    let out = Command::new(CLI)
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn griffin-cli");
    assert!(
        out.status.success(),
        "`griffin-cli {}` failed:\n{}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn spawned_fleet_matches_sweep_and_resumes_from_the_journal() {
    let dir = scratch_dir("spawn");

    let mut sweep_args = vec!["sweep"];
    sweep_args.extend(CAMPAIGN);
    sweep_args.extend([
        "--workers",
        "2",
        "--csv",
        "single.csv",
        "--json",
        "single.json",
    ]);
    run(&sweep_args, &dir);

    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend([
        "--shards",
        "2",
        "--spawn",
        "--dir",
        "fs",
        "--csv",
        "fleet.csv",
        "--json",
        "fleet.json",
    ]);
    run(&fleet_args, &dir);

    let single_csv = std::fs::read(dir.join("single.csv")).unwrap();
    assert_eq!(
        single_csv,
        std::fs::read(dir.join("fleet.csv")).unwrap(),
        "spawned fleet CSV must be byte-identical to sweep"
    );
    assert_eq!(
        std::fs::read(dir.join("single.json")).unwrap(),
        std::fs::read(dir.join("fleet.json")).unwrap(),
        "spawned fleet JSON must be byte-identical to sweep"
    );

    // Interrupt simulation: drop the journal's last completed cell,
    // then resume (still spawned) and compare again.
    let jpath = dir.join("fs/journal.jsonl");
    let text = std::fs::read_to_string(&jpath).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 2, "journal has header + entries");
    lines.pop();
    std::fs::write(&jpath, format!("{}\n", lines.join("\n"))).unwrap();

    let mut resume_args = vec!["fleet"];
    resume_args.extend(CAMPAIGN);
    resume_args.extend([
        "--shards",
        "2",
        "--spawn",
        "--resume",
        "--dir",
        "fs",
        "--csv",
        "resumed.csv",
    ]);
    run(&resume_args, &dir);
    assert_eq!(
        single_csv,
        std::fs::read(dir.join("resumed.csv")).unwrap(),
        "resumed fleet CSV must be byte-identical to sweep"
    );

    // The event stream is valid JSONL with a campaign_done terminator.
    let events = std::fs::read_to_string(dir.join("fs/events.jsonl")).unwrap();
    let last = events.lines().last().unwrap();
    assert!(
        last.contains("\"campaign_done\""),
        "stream ends the campaign: {last}"
    );
    for line in events.lines() {
        griffin::fleet::Event::parse_line(line).expect("every stream line parses");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_worker_is_retried_and_the_report_still_matches_sweep() {
    let dir = scratch_dir("chaos");

    let mut sweep_args = vec!["sweep"];
    sweep_args.extend(CAMPAIGN);
    sweep_args.extend(["--workers", "2", "--csv", "single.csv"]);
    run(&sweep_args, &dir);

    // Kill shard 1's worker after one completed cell; the coordinator
    // must re-queue its remaining cells onto a respawned worker and
    // still produce the byte-identical report.
    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend([
        "--shards",
        "3",
        "--spawn",
        "--dir",
        "fs",
        "--csv",
        "fleet.csv",
    ]);
    let out = Command::new(CLI)
        .args(&fleet_args)
        .env("GRIFFIN_FAULT", "kill:shard=1:after=1")
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "chaos fleet must recover:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(dir.join("single.csv")).unwrap(),
        std::fs::read(dir.join("fleet.csv")).unwrap(),
        "a retried campaign is byte-identical to sweep"
    );

    let events = std::fs::read_to_string(dir.join("fs/events.jsonl")).unwrap();
    for marker in [
        "\"ev\":\"shard_failed\"",
        "\"ev\":\"cells_requeued\"",
        "\"ev\":\"shard_retried\"",
        "griffin-fleet-events/3",
    ] {
        assert!(events.contains(marker), "stream must record {marker}");
    }
    let last = events.lines().last().unwrap();
    assert!(last.contains("\"campaign_done\""), "terminal event: {last}");
    for line in events.lines() {
        griffin::fleet::Event::parse_line(line).expect("every stream line parses");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn exhausted_retries_fail_with_a_terminal_campaign_failed() {
    let dir = scratch_dir("chaos-exhaust");
    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend([
        "--shards",
        "2",
        "--spawn",
        "--dir",
        "fs",
        "--max-shard-retries",
        "1",
    ]);
    let out = Command::new(CLI)
        .args(&fleet_args)
        .env("GRIFFIN_FAULT", "kill:shard=0:after=0:attempt=any")
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success(), "a shard that always dies must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("retries exhausted"), "stderr: {stderr}");

    let events = std::fs::read_to_string(dir.join("fs/events.jsonl")).unwrap();
    let last = events.lines().last().unwrap();
    assert!(
        last.contains("\"campaign_failed\""),
        "failures are terminal too: {last}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_garbage_fault_plan_is_refused_loudly() {
    let dir = scratch_dir("chaos-typo");
    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend(["--shards", "2", "--dir", "fs"]);
    let out = Command::new(CLI)
        .args(&fleet_args)
        .env("GRIFFIN_FAULT", "kill:shard=one")
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "a typoed chaos experiment must not run a clean campaign"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("GRIFFIN_FAULT"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fleet_rejects_resuming_a_different_campaign_grid() {
    let dir = scratch_dir("mismatch");
    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend(["--shards", "2", "--dir", "fs"]);
    run(&fleet_args, &dir);

    // Same state dir, different seed axis → different grid → refused.
    let out = Command::new(CLI)
        .args([
            "fleet", "synth", "b", "--tiles", "2", "--seeds", "2", "--fanin", "3", "--shards", "2",
            "--dir", "fs", "--resume",
        ])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("different campaign"),
        "stderr should explain the mismatch: {stderr}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigint_drains_cleanly_and_resume_completes_byte_identical() {
    let dir = scratch_dir("sigint");

    let mut sweep_args = vec!["sweep"];
    sweep_args.extend(CAMPAIGN);
    sweep_args.extend(["--workers", "2", "--csv", "single.csv"]);
    run(&sweep_args, &dir);

    // A worker that goes silent after one cell keeps the campaign
    // running forever (no heartbeat timeout is set) — the interrupt is
    // the only way out, exactly the operator scenario.
    let plan = griffin::fleet::plan::ShardPlan::new(&campaign_spec(), 2).unwrap();
    let victim = (0..2).max_by_key(|&s| plan.cells[s].len()).unwrap();
    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend([
        "--shards",
        "2",
        "--spawn",
        "--dir",
        "fs",
        "--csv",
        "fleet.csv",
    ]);
    let mut child = Command::new(CLI)
        .args(&fleet_args)
        .env(
            "GRIFFIN_FAULT",
            format!("stall:shard={victim}:after=1:attempt=any"),
        )
        .current_dir(&dir)
        .spawn()
        .unwrap();

    // Wait until real work is journaled, then ^C the coordinator.
    assert!(
        wait_for_marker(
            &dir.join("fs/events.jsonl"),
            "\"ev\":\"cell_done\"",
            Duration::from_secs(60),
        ),
        "the campaign never started producing cells"
    );
    assert!(Command::new("kill")
        .args(["-2", &child.id().to_string()])
        .status()
        .unwrap()
        .success());
    let waited = Instant::now();
    let status = loop {
        if let Some(s) = child.try_wait().unwrap() {
            break s;
        }
        assert!(
            waited.elapsed() < Duration::from_secs(60),
            "interrupted fleet did not exit"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(!status.success(), "an interrupted campaign is a failure");

    // The stream terminated with a campaign_failed naming the
    // interrupt, and every line still parses.
    let events = std::fs::read_to_string(dir.join("fs/events.jsonl")).unwrap();
    let last = events.lines().last().unwrap();
    assert!(
        last.contains("\"campaign_failed\"") && last.contains("interrupt"),
        "terminal event: {last}"
    );
    for line in events.lines() {
        griffin::fleet::Event::parse_line(line).expect("every stream line parses");
    }

    // The journal survived: a resume (fault cleared) finishes the
    // campaign byte-identical to the single-process sweep.
    let mut resume_args = vec!["fleet"];
    resume_args.extend(CAMPAIGN);
    resume_args.extend([
        "--shards",
        "2",
        "--spawn",
        "--resume",
        "--dir",
        "fs",
        "--csv",
        "resumed.csv",
    ]);
    run(&resume_args, &dir);
    assert_eq!(
        std::fs::read(dir.join("single.csv")).unwrap(),
        std::fs::read(dir.join("resumed.csv")).unwrap(),
        "resumed-after-interrupt CSV must be byte-identical to sweep"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn multi_host_fleet_survives_a_partitioned_host_and_matches_sweep() {
    let dir = scratch_dir("hosts");

    let mut sweep_args = vec!["sweep"];
    sweep_args.extend(CAMPAIGN);
    sweep_args.extend(["--workers", "2", "--csv", "single.csv"]);
    run(&sweep_args, &dir);

    // Two "machines" (both LocalExec under the hood); the victim is
    // the home host of the busiest shard, so the partition provably
    // bites and its shards provably move.
    let shards = 3;
    let plan = griffin::fleet::plan::ShardPlan::new(&campaign_spec(), shards).unwrap();
    let busiest = (0..shards).max_by_key(|&s| plan.cells[s].len()).unwrap();
    let victim = ["h0", "h1"][griffin::fleet::plan::host_of(plan.spec_fp, busiest, 2)];
    let survivor = if victim == "h0" { "h1" } else { "h0" };

    let mut fleet_args = vec!["fleet"];
    fleet_args.extend(CAMPAIGN);
    fleet_args.extend([
        "--shards",
        "3",
        "--hosts",
        "local:h0,local:h1",
        "--max-shard-retries",
        "4",
        "--dir",
        "fs",
        "--csv",
        "fleet.csv",
    ]);
    let out = Command::new(CLI)
        .args(&fleet_args)
        .env(
            "GRIFFIN_FAULT",
            format!("partition:host={victim}:after=0:attempt=any"),
        )
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "the fleet must survive losing a host:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(dir.join("single.csv")).unwrap(),
        std::fs::read(dir.join("fleet.csv")).unwrap(),
        "one host down, report still byte-identical to sweep"
    );

    let events = std::fs::read_to_string(dir.join("fs/events.jsonl")).unwrap();
    for marker in [
        "griffin-fleet-events/3",
        "\"ev\":\"host_lost\"",
        &format!("\"host\":\"{victim}\"") as &str,
        &format!("\"host\":\"{survivor}\"") as &str,
    ] {
        assert!(events.contains(marker), "stream must record {marker}");
    }
    let last = events.lines().last().unwrap();
    assert!(last.contains("\"campaign_done\""), "terminal event: {last}");
    for line in events.lines() {
        griffin::fleet::Event::parse_line(line).expect("every stream line parses");
    }

    // The observability side reports the loss: one lost host in the
    // one-shot summary, with per-host states.
    let watch = run(&["fleet", "watch", "fs", "--json"], &dir);
    let summary = String::from_utf8(watch.stdout).unwrap();
    assert!(
        summary.contains("\"hosts_lost\":1"),
        "watch --json sees the lost host: {summary}"
    );
    assert!(
        summary.contains(&format!("\"host\":\"{victim}\""))
            && summary.contains("\"state\":\"lost\""),
        "summary names the lost host: {summary}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
