//! Golden-fingerprint regression pins for the shipped scenario library.
//!
//! Two invariants guard cache and journal compatibility across the
//! scenario refactor:
//!
//! 1. every shipped scenario whose campaign the token CLI can spell
//!    produces a [`SweepSpec`] whose spec fingerprint (and therefore
//!    every cell fingerprint) is **identical** to the hand-built spec
//!    the tokens produce — pre-refactor disk caches keep hitting and
//!    `--resume` keeps accepting pre-refactor journals;
//! 2. the fingerprints themselves are pinned as hard-coded literals, so
//!    an accidental change to the canonical encoding (which would
//!    silently invalidate every on-disk artifact) fails loudly. If one
//!    must change, treat it as a cache-format bump.

use griffin::core::arch::ArchSpec;
use griffin::core::category::DnnCategory;
use griffin::fleet::spec_fingerprint;
use griffin::sim::config::{Fidelity, SimConfig};
use griffin::sweep::{ArchFamily, Scenario, SweepSpec};
use griffin::workloads::suite::Benchmark;

fn scenario(file: &str) -> Scenario {
    let path = format!("{}/scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
    Scenario::load(&path).unwrap_or_else(|e| panic!("{file}: {e}"))
}

/// What `griffin-cli` builds for `sweep`/`pareto` campaigns: sampled
/// fidelity with the CLI's tile seed.
fn cli_sim(tiles: usize) -> SimConfig {
    SimConfig {
        fidelity: Fidelity::Sampled {
            tiles,
            seed: 0xBEEF,
        },
        ..SimConfig::default()
    }
}

#[test]
fn fig5_bert_b_matches_the_token_campaign() {
    // `griffin-cli sweep bert b` (defaults: seeds 42,43, tiles 12,
    // dense + Sparse.B family at fan-in 8).
    let hand = SweepSpec::new("sweep-bert-b")
        .category(DnnCategory::B)
        .seeds([42, 43])
        .sim(cli_sim(12))
        .benchmark(Benchmark::Bert)
        .arch(ArchSpec::dense())
        .family(ArchFamily::SparseB { max_fanin: 8 });
    let scen = scenario("fig5-bert-b.toml");
    assert_eq!(scen.to_spec(), hand, "spec must match field-for-field");
    assert_eq!(spec_fingerprint(&scen.to_spec()), spec_fingerprint(&hand));
    assert_eq!(
        spec_fingerprint(&hand).to_string(),
        "bca172b20973144f2e17345b5b07e7ec"
    );
}

#[test]
fn fig5_alexnet_b_matches_the_token_campaign() {
    let hand = SweepSpec::new("sweep-alexnet-b")
        .category(DnnCategory::B)
        .seeds([42, 43])
        .sim(cli_sim(12))
        .benchmark(Benchmark::AlexNet)
        .arch(ArchSpec::dense())
        .family(ArchFamily::SparseB { max_fanin: 8 });
    let scen = scenario("fig5-alexnet-b.toml");
    assert_eq!(scen.to_spec(), hand);
    assert_eq!(
        spec_fingerprint(&hand).to_string(),
        "6b2ce726a55056a6d98bd6d273de12a4"
    );
}

#[test]
fn table7_lineup_matches_the_token_campaign() {
    // `griffin-cli sweep resnet50 ab --lineup`.
    let hand = SweepSpec::new("sweep-resnet50-ab")
        .category(DnnCategory::AB)
        .seeds([42, 43])
        .sim(cli_sim(12))
        .benchmark(Benchmark::ResNet50)
        .archs(ArchSpec::table7_lineup());
    let scen = scenario("table7-lineup.toml");
    assert_eq!(scen.to_spec(), hand);
    assert_eq!(
        spec_fingerprint(&hand).to_string(),
        "8a58eee1951dcbada95067185fc12a44"
    );
}

#[test]
fn pareto_bert_b_matches_the_token_campaign() {
    // `griffin-cli pareto bert b`: sparse + dense category pair, family
    // only (no dense arch).
    let hand = SweepSpec::new("pareto-bert-b")
        .categories([DnnCategory::B, DnnCategory::Dense])
        .seeds([42, 43])
        .sim(cli_sim(12))
        .family(ArchFamily::SparseB { max_fanin: 8 })
        .benchmark(Benchmark::Bert);
    let scen = scenario("pareto-bert-b.toml");
    assert_eq!(scen.to_spec(), hand);
    assert_eq!(
        spec_fingerprint(&hand).to_string(),
        "73965056e8a13f757cf0e28b8e0d8004"
    );
}

#[test]
fn ci_smoke_matches_the_token_campaign() {
    // `griffin-cli sweep synth b --tiles 2 --seeds 1 --fanin 3` — the
    // campaign CI compares byte-for-byte against a 2-shard fleet.
    let hand = SweepSpec::new("sweep-synth-b")
        .category(DnnCategory::B)
        .seeds([1])
        .sim(cli_sim(2))
        .synthetic("synth", 4)
        .arch(ArchSpec::dense())
        .family(ArchFamily::SparseB { max_fanin: 3 });
    let scen = scenario("ci-smoke.toml");
    assert_eq!(scen.to_spec(), hand);
    assert_eq!(
        spec_fingerprint(&hand).to_string(),
        "08f9898766ba032827910787e6e28f04"
    );
    let fleet = scen.fleet.expect("ci-smoke ships fleet settings");
    assert_eq!((fleet.shards, fleet.spawn), (2, true));
}

#[test]
fn design_space_matches_the_example_campaign() {
    // examples/design_space.rs historically hand-built this spec with
    // the default SimConfig.
    let hand = SweepSpec::new("design-space")
        .synthetic("pruned", 4)
        .categories([DnnCategory::B, DnnCategory::Dense])
        .archs(griffin::core::dse::enumerate_sparse_b(8))
        .seeds([3]);
    let scen = scenario("design-space.toml");
    assert_eq!(scen.to_spec(), hand);
    assert_eq!(
        spec_fingerprint(&hand).to_string(),
        "aab41b7288084aa98a1608e503dff1ec"
    );
}

/// Scenario (provenance) fingerprints of every shipped file, pinned so
/// artifact trails stay stable. These identify the canonical *scenario
/// text*; the spec fingerprints above identify the campaign grid.
#[test]
fn shipped_scenario_fingerprints_are_pinned() {
    for (file, fp) in [
        ("bert-seeds.toml", "7fb706abb4f7a9cb6da5df417b59d56c"),
        ("ci-smoke.toml", "3686c92deffae9fb1cbe274ac7619a8c"),
        ("design-space.toml", "74d26656146a5e016e2fd0656258e2ac"),
        ("fig5-alexnet-b.toml", "c070b073fd3f36778ef229dcc23a58ec"),
        ("fig5-bert-b.toml", "f412f6b6ea6c1b6f6c76c92f696b804c"),
        ("pareto-bert-b.toml", "1200c8953d862bc857d44e06b52c0e8c"),
        ("table7-lineup.toml", "6194a7358d518d477ecfdd768ade786c"),
    ] {
        assert_eq!(scenario(file).fingerprint().to_string(), fp, "{file}");
    }
}

/// The bert-seeds scenario has no token equivalent (custom windows);
/// pin its grid identity directly.
#[test]
fn bert_seeds_grid_is_pinned() {
    let scen = scenario("bert-seeds.toml");
    let spec = scen.to_spec();
    assert_eq!(spec.archs.len(), 4);
    assert_eq!(spec.archs[3].name, "Sparse.B(8,0,1),on");
    assert_eq!(
        spec_fingerprint(&spec).to_string(),
        "0169f2f843ab06464569ffad371b640c"
    );
}
