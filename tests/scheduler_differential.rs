//! Differential property tests: the event-driven scheduler core must be
//! observably indistinguishable from the retained naive reference
//! (`griffin::sim::engine::reference`) — identical [`Schedule`] counters
//! and identical [`Assignment`] streams — across random grids, windows
//! and priorities. The word-level grid builders must likewise reproduce
//! the predicate-built grids bit for bit.
//!
//! [`Schedule`]: griffin::sim::engine::Schedule
//! [`Assignment`]: griffin::sim::engine::Assignment

use griffin::sim::config::Priority;
use griffin::sim::engine::{
    reference, schedule_assign_with, schedule_multi, schedule_with, OpGrid, SchedScratch,
};
use griffin::sim::grid::{build_a_grid, build_b_grid};
use griffin::sim::shuffle::LaneMap;
use griffin::sim::window::EffectiveWindow;
use griffin::tensor::block::{ATileView, BTileView, TileCoord, TileView};
use griffin::tensor::gen::TensorGen;
use griffin::tensor::shape::CoreDims;
use proptest::prelude::*;

/// A random op grid driven by a seed and density.
fn grid(t: usize, lanes: usize, rows: usize, cols: usize, density: f64, seed: u64) -> OpGrid {
    let mask = TensorGen::seeded(seed).bernoulli_mask(t * lanes, rows * cols, density);
    OpGrid::from_fn(t, lanes, rows, cols, |tt, l, r, c| {
        mask.get(tt * lanes + l, r * cols + c)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Event-driven scheduler == naive reference, for both the counters
    /// and the full assignment stream, over random grids and windows.
    #[test]
    fn event_core_is_bit_identical_to_reference(
        seed in 0u64..2000,
        density in 0.02f64..1.0,
        depth in 1usize..7,
        lane in 0usize..3,
        rows_reach in 0usize..2,
        cols_reach in 0usize..3,
        own_first in proptest::bool::ANY,
    ) {
        let g = grid(20, 6, 2, 4, density, seed);
        let win = EffectiveWindow { depth, lane, rows: rows_reach, cols: cols_reach };
        let p = if own_first { Priority::OwnFirst } else { Priority::EarliestFirst };

        let (s_ref, a_ref) = reference::schedule_assign(&g, win, p);
        let mut scratch = SchedScratch::new();
        let mut out = Vec::new();
        let s_new = schedule_assign_with(&g, win, p, &mut scratch, &mut out);

        prop_assert_eq!(s_new, s_ref, "Schedule diverged (win {:?}, {:?})", win, p);
        prop_assert_eq!(&out, &a_ref, "Assignment stream diverged (win {:?}, {:?})", win, p);
        // The no-collect path must agree with the collecting one.
        prop_assert_eq!(schedule_with(&g, win, p, &mut scratch), s_ref);
    }

    /// Contended windows: dense grids under deep, wide-reach windows,
    /// where many borrow taps compete for the same donor columns every
    /// cycle. This is the regime the sorted-tap time-only scan and the
    /// certain-winner early exit optimize, so it gets its own pin
    /// against the reference — the general test above rarely samples
    /// this corner of the (density, window) space.
    #[test]
    fn contended_windows_stay_bit_identical(
        seed in 0u64..1500,
        density in 0.6f64..1.0,
        depth in 4usize..10,
        lane in 1usize..4,
        cols_reach in 1usize..4,
        own_first in proptest::bool::ANY,
    ) {
        let g = grid(32, 8, 2, 4, density, seed);
        let win = EffectiveWindow { depth, lane, rows: 1, cols: cols_reach };
        let p = if own_first { Priority::OwnFirst } else { Priority::EarliestFirst };

        let (s_ref, a_ref) = reference::schedule_assign(&g, win, p);
        let mut scratch = SchedScratch::new();
        let mut out = Vec::new();
        let s_new = schedule_assign_with(&g, win, p, &mut scratch, &mut out);

        prop_assert_eq!(s_new, s_ref, "contended Schedule diverged (win {:?}, {:?})", win, p);
        prop_assert_eq!(&out, &a_ref, "contended Assignment stream diverged (win {:?}, {:?})", win, p);
    }

    /// Scratch reuse across grids of different shapes and windows never
    /// leaks state: results equal fresh-scratch runs, in any order.
    #[test]
    fn scratch_reuse_is_stateless(
        seed in 0u64..500,
        density in 0.05f64..0.9,
        depth_a in 1usize..5,
        depth_b in 1usize..9,
    ) {
        let g1 = grid(16, 4, 1, 4, density, seed);
        let g2 = grid(9, 2, 3, 2, 1.0 - density * 0.5, seed ^ 0xABCD);
        let w1 = EffectiveWindow { depth: depth_a, lane: 1, rows: 0, cols: 1 };
        let w2 = EffectiveWindow { depth: depth_b, lane: 0, rows: 1, cols: 0 };

        let mut scratch = SchedScratch::new();
        for _ in 0..2 {
            for (g, w) in [(&g1, w1), (&g2, w2), (&g1, w2), (&g2, w1)] {
                let fresh = reference::schedule(g, w, Priority::OwnFirst);
                prop_assert_eq!(
                    schedule_with(g, w, Priority::OwnFirst, &mut scratch),
                    fresh
                );
            }
        }
    }

    /// Word-level B/A builders produce exactly the grid the predicate
    /// build produces, including ragged tile edges and lane shuffling.
    #[test]
    fn word_level_builders_match_predicate_builds(
        seed in 0u64..1000,
        density in 0.02f64..1.0,
        extra_k in 0usize..20,
        n_cols in 20usize..40,
        shuffle in proptest::bool::ANY,
    ) {
        let core = CoreDims::PAPER;
        let lanes = LaneMap::from_flag(shuffle);
        let mut gen = TensorGen::seeded(seed);
        let mut g = OpGrid::default();
        let mut span = Vec::new();

        let b_mask = gen.bernoulli_mask(2 * core.k0 + extra_k, n_cols, density);
        for n_tile in 0..n_cols.div_ceil(core.n0) {
            let view = BTileView::new(&b_mask, core, n_tile * core.n0);
            build_b_grid(&mut g, &mut span, &view, lanes);
            let want = OpGrid::from_fn(view.t_steps(), core.k0, 1, core.n0, |t, l, _, c| {
                view.is_nonzero(TileCoord { t, lane: lanes.source_lane(l, t), s: c })
            });
            prop_assert_eq!(&g, &want, "B tile {} diverged", n_tile);
        }

        let a_mask = gen.bernoulli_mask(core.m0 * 2 - 1, 2 * core.k0 + extra_k, density);
        for m_tile in 0..2 {
            let view = ATileView::new(&a_mask, core, m_tile * core.m0);
            build_a_grid(&mut g, &mut span, &view, lanes);
            let want = OpGrid::from_fn(view.t_steps(), core.k0, core.m0, 1, |t, l, r, _| {
                view.is_nonzero(TileCoord { t, lane: lanes.source_lane(l, t), s: r })
            });
            prop_assert_eq!(&g, &want, "A tile {} diverged", m_tile);
        }
    }

    /// Multi-window scheduling == K independent `schedule_with` calls,
    /// bitwise, over random window families: shared-reach groups with
    /// varying depths, exact duplicates, arbitrary order. Whatever mix
    /// of full passes and saturating-depth replays `schedule_multi`
    /// picks, every returned [`Schedule`] must match its solo run.
    #[test]
    fn schedule_multi_matches_independent_schedules(
        seed in 0u64..1000,
        density in 0.02f64..1.0,
        own_first in proptest::bool::ANY,
        wins in proptest::collection::vec(
            (1usize..8, 0usize..3, 0usize..2, 0usize..3), 1..12),
    ) {
        let g = grid(20, 6, 2, 4, density, seed);
        let p = if own_first { Priority::OwnFirst } else { Priority::EarliestFirst };
        let fam: Vec<EffectiveWindow> = wins
            .iter()
            .map(|&(depth, lane, rows, cols)| EffectiveWindow { depth, lane, rows, cols })
            .collect();

        let mut scratch = SchedScratch::new();
        let mut out = Vec::new();
        let share = schedule_multi(&g, &fam, p, &mut scratch, &mut out);
        prop_assert_eq!(share.scheduled + share.replayed, fam.len());
        prop_assert_eq!(out.len(), fam.len());
        for (i, (w, s)) in fam.iter().zip(&out).enumerate() {
            let solo = schedule_with(&g, *w, p, &mut scratch);
            prop_assert_eq!(*s, solo, "window {} ({:?}, {:?}) diverged", i, w, p);
        }
    }

    /// Structured (N:M) grids keep every slot's run-ahead lag small, so
    /// saturating-depth replay actually fires; the replayed copies must
    /// still be bitwise identical to full event-core passes.
    #[test]
    fn replayed_schedules_match_on_structured_grids(
        seed in 0u64..500,
        m in 4usize..9,
        n in 1usize..4,
        own_first in proptest::bool::ANY,
        depths in proptest::collection::vec(1usize..10, 2..8),
        lane in 0usize..3,
        cols_reach in 0usize..3,
    ) {
        // N-of-M periodic columns, phase-shifted per slot.
        let g = OpGrid::from_fn(24, 6, 2, 4, |t, l, r, c| {
            (t + l * 7 + r * 5 + c * 13 + seed as usize) % m < n
        });
        let p = if own_first { Priority::OwnFirst } else { Priority::EarliestFirst };
        // One shared reach, depths varying: the regime where the
        // deepest window's tracked pass replays the shallower ones.
        let fam: Vec<EffectiveWindow> = depths
            .iter()
            .map(|&depth| EffectiveWindow { depth, lane, rows: 0, cols: cols_reach })
            .collect();

        let mut scratch = SchedScratch::new();
        let mut out = Vec::new();
        let share = schedule_multi(&g, &fam, p, &mut scratch, &mut out);
        prop_assert_eq!(share.scheduled + share.replayed, fam.len());
        for (w, s) in fam.iter().zip(&out) {
            prop_assert_eq!(*s, schedule_with(&g, *w, p, &mut scratch), "win {:?}", w);
        }
    }

    /// End-to-end: layer simulation through reusable scratch equals the
    /// allocating convenience path (the zero-alloc plumbing changes no
    /// numbers).
    #[test]
    fn scratch_threading_preserves_layer_results(
        seed in 0u64..200,
        da in 0.2f64..1.0,
        db in 0.1f64..0.9,
    ) {
        use griffin::sim::config::{SimConfig, SparsityMode};
        use griffin::sim::layer::GemmLayer;
        use griffin::sim::pipeline::{simulate_layer, simulate_layer_with};
        use griffin::sim::window::BorrowWindow;
        use griffin::sim::SimScratch;
        use griffin::tensor::shape::GemmShape;

        let layer = GemmLayer::with_densities(
            GemmShape::new(24, 96, 40).unwrap(), da, db, seed,
        ).unwrap();
        let cfg = SimConfig::exact();
        let mut scratch = SimScratch::new();
        scratch.begin_reuse_scope(seed as u128);
        for mode in [
            SparsityMode::SparseB { win: BorrowWindow::new(4, 0, 1), shuffle: true },
            SparsityMode::SparseA { win: BorrowWindow::new(2, 1, 0), shuffle: false },
            SparsityMode::SparseAB {
                a: BorrowWindow::new(2, 0, 0),
                b: BorrowWindow::new(2, 0, 1),
                shuffle: true,
            },
            SparsityMode::SparTen { a_sparse: true, b_sparse: true },
        ] {
            let fresh = simulate_layer(&layer, mode, &cfg);
            let reused = simulate_layer_with(&layer, mode, &cfg, &mut scratch);
            prop_assert_eq!(reused, fresh, "mode {:?}", mode);
        }
    }
}
