//! Property-based tests (proptest) on the core invariants: the greedy
//! borrowing scheduler, shuffling, masks and the analytic model.

use griffin::core::analytic::estimate_speedup;
use griffin::sim::config::{Priority, SparsityMode};
use griffin::sim::engine::{schedule, schedule_assign, OpGrid};
use griffin::sim::shuffle::{shuffle_lane, unshuffle_lane};
use griffin::sim::window::{BorrowWindow, EffectiveWindow};
use griffin::tensor::gen::TensorGen;
use griffin::tensor::mask::SparsityMask;
use proptest::prelude::*;

/// A random op grid driven by a seed and density.
fn grid(t: usize, lanes: usize, rows: usize, cols: usize, density: f64, seed: u64) -> OpGrid {
    let mask = TensorGen::seeded(seed).bernoulli_mask(t * lanes, rows * cols, density);
    OpGrid::from_fn(t, lanes, rows, cols, |tt, l, r, c| {
        mask.get(tt * lanes + l, r * cols + c)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The scheduler executes every op exactly once and the makespan is
    /// bounded by [max per-slot ops, dense T] for any window.
    #[test]
    fn scheduler_conserves_ops_and_respects_bounds(
        seed in 0u64..1000,
        density in 0.05f64..1.0,
        depth in 1usize..6,
        lane in 0usize..3,
        d3 in 0usize..3,
        own_first in proptest::bool::ANY,
    ) {
        let g = grid(24, 8, 2, 4, density, seed);
        let row_reach = usize::from(d3 > 1);
        let win = EffectiveWindow { depth, lane, rows: row_reach, cols: d3 };
        let p = if own_first { Priority::OwnFirst } else { Priority::EarliestFirst };
        let s = schedule(&g, win, p);
        prop_assert_eq!(s.executed as usize, g.total_ops());
        // One op per slot per cycle bounds the makespan from below.
        let slots = 8 * 2 * 4;
        prop_assert!(s.cycles as usize * slots >= g.total_ops());
        // Without any cross-slot reach, the hottest slot is a bound too.
        if lane == 0 && d3 == 0 && row_reach == 0 {
            prop_assert!(s.cycles >= g.max_column_ops() as u64);
        }
        if g.total_ops() > 0 {
            prop_assert!(s.cycles <= g.t_steps() as u64);
        }
    }

    /// Growing the window never increases the makespan.
    #[test]
    fn wider_windows_never_hurt(
        seed in 0u64..500,
        density in 0.05f64..0.9,
        depth in 1usize..5,
        lane in 0usize..2,
    ) {
        let g = grid(24, 8, 1, 4, density, seed);
        let small = schedule(
            &g,
            EffectiveWindow { depth, lane, rows: 0, cols: 0 },
            Priority::OwnFirst,
        );
        let big = schedule(
            &g,
            EffectiveWindow { depth: depth + 2, lane: lane + 1, rows: 0, cols: 1 },
            Priority::OwnFirst,
        );
        prop_assert!(big.cycles <= small.cycles);
    }

    /// Every assignment is legal: each op is placed exactly once, at
    /// most one op per (cycle, slot), and time only moves earlier or
    /// stays (t >= cycle would be the dense position; borrowing can only
    /// pull ops earlier, never delay past the horizon of their row).
    #[test]
    fn assignments_are_a_valid_schedule(
        seed in 0u64..500,
        density in 0.05f64..0.9,
    ) {
        let g = grid(16, 4, 1, 4, density, seed);
        let win = EffectiveWindow { depth: 3, lane: 1, rows: 0, cols: 1 };
        let (s, assigns) = schedule_assign(&g, win, Priority::OwnFirst);
        prop_assert_eq!(assigns.len(), g.total_ops());
        // One op per (cycle, slot).
        let mut seen = std::collections::HashSet::new();
        for a in &assigns {
            prop_assert!(seen.insert((a.cycle, a.slot)), "slot double-booked: {a:?}");
            prop_assert!(a.cycle < s.cycles);
            // Displacement limits: lane and col within the window reach.
            let dl = a.src.0 as isize - a.slot.0 as isize;
            let dc = a.src.2 as isize - a.slot.2 as isize;
            prop_assert!(dl.unsigned_abs() <= win.lane);
            prop_assert!(dc.unsigned_abs() <= win.cols);
        }
        // Each op placed exactly once (multiset equality via sorting).
        let mut placed: Vec<_> = assigns.iter().map(|a| (a.t, a.src)).collect();
        placed.sort_unstable();
        placed.dedup();
        prop_assert_eq!(placed.len(), g.total_ops());
    }

    /// The rotation shuffler is a bijection for every time step.
    #[test]
    fn shuffle_is_bijective(t in 0usize..64, lane in 0usize..16) {
        prop_assert_eq!(unshuffle_lane(shuffle_lane(lane, t), t), lane);
        prop_assert!(shuffle_lane(lane, t) / 4 == lane / 4, "stays in its 4-lane group");
    }

    /// Mask intersection density can never exceed either operand's.
    #[test]
    fn mask_and_density_bound(
        seed in 0u64..500,
        da in 0.0f64..1.0,
        db in 0.0f64..1.0,
    ) {
        let mut g = TensorGen::seeded(seed);
        let a = g.bernoulli_mask(32, 32, da);
        let b = g.bernoulli_mask(32, 32, db);
        let both = a.and(&b).unwrap();
        prop_assert!(both.nnz() <= a.nnz().min(b.nnz()));
    }

    /// Channel-minor masks hit their target density in expectation.
    #[test]
    fn channel_minor_mean_density(
        seed in 0u64..200,
        density in 0.05f64..0.85,
    ) {
        // The generator calibrates a global gain against the [0,1] clamp
        // bias, so the realized mean tracks the target across the range.
        let m = TensorGen::seeded(seed).channel_minor_mask(256, 256, density, 64, 0.6, true);
        let d = m.density();
        prop_assert!((d - density).abs() < 0.12, "density {d} vs target {density}");
    }

    /// The analytic estimate always respects the ideal bound 1/p and
    /// never predicts a slowdown.
    #[test]
    fn analytic_estimate_is_bounded(
        pa in 0.05f64..1.0,
        pb in 0.05f64..1.0,
        d1 in 0usize..8,
        d2 in 0usize..3,
        d3 in 0usize..3,
    ) {
        let mode = SparsityMode::SparseB { win: BorrowWindow::new(d1, d2, d3), shuffle: true };
        let s = estimate_speedup(mode, pa, pb);
        prop_assert!(s >= 1.0);
        prop_assert!(s <= 1.0 / pb + 1e-9);
        let dual = SparsityMode::SparseAB {
            a: BorrowWindow::new(d1.min(2), d2, 0),
            b: BorrowWindow::new(d1, d2, d3),
            shuffle: true,
        };
        let sd = estimate_speedup(dual, pa, pb);
        prop_assert!(sd >= 1.0);
        prop_assert!(sd <= 1.0 / (pa * pb) + 1e-9);
    }

    /// Dense grids always take exactly T cycles, whatever the window.
    #[test]
    fn dense_grid_is_always_t_cycles(
        depth in 1usize..6,
        lane in 0usize..3,
    ) {
        let g = OpGrid::from_fn(12, 4, 2, 2, |_, _, _, _| true);
        let s = schedule(
            &g,
            EffectiveWindow { depth, lane, rows: 1, cols: 1 },
            Priority::OwnFirst,
        );
        prop_assert_eq!(s.cycles, 12);
    }

    /// Borrowing schedules compute the exact GEMM product for random
    /// operands, densities and windows — the end-to-end functional
    /// correctness property of the whole architecture family.
    #[test]
    fn schedules_preserve_the_computation(
        seed in 0u64..200,
        da in 0.2f64..1.0,
        db in 0.1f64..0.8,
        d1 in 1usize..5,
        d3 in 0usize..2,
        shuffle in proptest::bool::ANY,
    ) {
        use griffin::sim::functional::{sparse_ab_product, sparse_b_product};
        use griffin::tensor::shape::CoreDims;
        let mut g = TensorGen::seeded(seed);
        let a = g.relu_activations(6, 48, da);
        let b = g.pruned_weights(48, 12, db);
        let reference = a.matmul(&b).unwrap();
        let core = CoreDims::PAPER;
        let cb = sparse_b_product(
            &a, &b, BorrowWindow::new(d1, 0, d3), shuffle, core, Priority::OwnFirst,
        ).unwrap();
        prop_assert_eq!(&cb, &reference);
        let cab = sparse_ab_product(
            &a, &b,
            BorrowWindow::new(d1.min(2), 0, 0),
            BorrowWindow::new(d1, 0, d3),
            shuffle, core, Priority::OwnFirst,
        ).unwrap();
        prop_assert_eq!(&cab, &reference);
    }

    /// SparsityMask set/get roundtrip at random coordinates.
    #[test]
    fn mask_set_get_roundtrip(r in 0usize..40, c in 0usize..40) {
        let mut m = SparsityMask::zeros(40, 40);
        m.set(r, c, true);
        prop_assert!(m.get(r, c));
        prop_assert_eq!(m.nnz(), 1);
        m.set(r, c, false);
        prop_assert_eq!(m.nnz(), 0);
    }
}
