//! Cross-crate integration tests: the paper's end-to-end claims on
//! realistic (synthetic-masked) workloads at reduced fidelity.

use griffin::core::accelerator::{Accelerator, Workload};
use griffin::core::arch::ArchSpec;
use griffin::core::category::DnnCategory;
use griffin::sim::config::{Fidelity, SimConfig};
use griffin::workloads::suite::{build_workload, Benchmark};
use griffin::workloads::synth::synthetic_workload;

fn fast_cfg() -> SimConfig {
    SimConfig {
        fidelity: Fidelity::Sampled { tiles: 6, seed: 1 },
        ..SimConfig::default()
    }
}

fn run(spec: ArchSpec, wl: &Workload) -> f64 {
    Accelerator::new(spec, fast_cfg()).run(wl).speedup
}

#[test]
fn each_specialist_wins_its_home_category() {
    let b_wl = synthetic_workload("b", DnnCategory::B, 4, 11).unwrap();
    let a_wl = synthetic_workload("a", DnnCategory::A, 4, 12).unwrap();
    let ab_wl = synthetic_workload("ab", DnnCategory::AB, 4, 13).unwrap();

    // Sparse.B* is the best single-sparse design on DNN.B.
    let b_star_on_b = run(ArchSpec::sparse_b_star(), &b_wl);
    let a_star_on_b = run(ArchSpec::sparse_a_star(), &b_wl);
    assert!(b_star_on_b > 1.7, "B* on DNN.B: {b_star_on_b}");
    assert!(
        a_star_on_b < 1.05,
        "A* gets nothing from weight sparsity: {a_star_on_b}"
    );

    // Sparse.A* is the best single-sparse design on DNN.A.
    let a_star_on_a = run(ArchSpec::sparse_a_star(), &a_wl);
    let b_star_on_a = run(ArchSpec::sparse_b_star(), &a_wl);
    assert!(a_star_on_a > 1.2, "A* on DNN.A: {a_star_on_a}");
    assert!(
        b_star_on_a < 1.05,
        "B* gets nothing from activation sparsity: {b_star_on_a}"
    );

    // Sparse.AB* beats both single-sparse designs on DNN.AB.
    let ab_star_on_ab = run(ArchSpec::sparse_ab_star(), &ab_wl);
    assert!(ab_star_on_ab > run(ArchSpec::sparse_b_star(), &ab_wl));
    assert!(ab_star_on_ab > run(ArchSpec::sparse_a_star(), &ab_wl));
}

#[test]
fn griffin_is_a_top_performer_everywhere() {
    // The paper's core claim: Griffin stays within a whisker of the best
    // specialist in every category (and beats the fixed dual-sparse
    // design on single-sparse models).
    for (cat, specialist) in [
        (DnnCategory::B, ArchSpec::sparse_b_star()),
        (DnnCategory::A, ArchSpec::sparse_a_star()),
        (DnnCategory::AB, ArchSpec::sparse_ab_star()),
    ] {
        let wl = synthetic_workload("wl", cat, 4, 21).unwrap();
        let g = run(ArchSpec::griffin(), &wl);
        let s = run(specialist.clone(), &wl);
        assert!(
            g >= s * 0.9,
            "{cat}: Griffin {g:.2} too far below specialist {} {s:.2}",
            specialist.name
        );
    }
}

#[test]
fn griffin_morphing_beats_downgraded_dual_sparse() {
    for cat in [DnnCategory::B, DnnCategory::A] {
        let wl = synthetic_workload("wl", cat, 4, 22).unwrap();
        let g = run(ArchSpec::griffin(), &wl);
        let ab = run(ArchSpec::sparse_ab_star(), &wl);
        assert!(
            g >= ab,
            "{cat}: Griffin {g:.2} must not lose to fixed dual-sparse {ab:.2}"
        );
    }
}

#[test]
fn dense_models_see_no_sparse_speedup() {
    let wl = synthetic_workload("dense", DnnCategory::Dense, 3, 23).unwrap();
    for spec in ArchSpec::table7_lineup() {
        let s = run(spec.clone(), &wl);
        assert!(
            (0.9..1.2).contains(&s),
            "{} on dense: speedup {s} should be ~1",
            spec.name
        );
    }
}

#[test]
fn table_iv_dense_latencies_are_in_band() {
    let cfg = fast_cfg();
    for b in Benchmark::ALL {
        let info = b.info();
        let wl = build_workload(b, DnnCategory::Dense, 1);
        let cycles = wl.dense_cycles(&cfg) as f64;
        let ratio = cycles / info.paper_dense_cycles;
        // MobileNetV2's depthwise mapping differs (EXPERIMENTS.md); all
        // others must be within 35% of Table IV.
        let band = if b == Benchmark::MobileNetV2 {
            0.3..1.5
        } else {
            0.65..1.4
        };
        assert!(band.contains(&ratio), "{}: ratio {ratio}", info.name);
    }
}

#[test]
fn efficiency_ordering_matches_figure_8_on_dnn_ab() {
    let wl = build_workload(Benchmark::ResNet50, DnnCategory::AB, 2);
    let baseline = Accelerator::new(ArchSpec::dense(), fast_cfg()).run(&wl);
    let griffin = Accelerator::new(ArchSpec::griffin(), fast_cfg()).run(&wl);
    let sparten = Accelerator::new(ArchSpec::sparten_ab(), fast_cfg()).run(&wl);
    // Griffin beats the dense baseline and SparTen on power efficiency
    // for dual-sparse models (Figure 8(d)).
    assert!(griffin.effective_tops_per_w > baseline.effective_tops_per_w);
    assert!(griffin.effective_tops_per_w > sparten.effective_tops_per_w);
    // SparTen is nonetheless much faster than dense (its costs are in
    // power/area, not cycles).
    assert!(sparten.speedup > griffin.speedup * 0.8);
}

#[test]
fn run_reports_are_deterministic() {
    let wl = synthetic_workload("det", DnnCategory::AB, 3, 33).unwrap();
    let a = Accelerator::new(ArchSpec::griffin(), fast_cfg()).run(&wl);
    let b = Accelerator::new(ArchSpec::griffin(), fast_cfg()).run(&wl);
    assert_eq!(a.speedup, b.speedup);
    assert_eq!(a.network.cycles(), b.network.cycles());
}
