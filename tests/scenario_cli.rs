//! End-to-end CLI tests of the scenario subsystem at the binary
//! boundary: `scenario validate/show`, `sweep --scenario` byte-identity
//! with the token spelling (including a warm shared cache), and
//! `fleet --scenario` provenance in the journal header and the
//! `campaign_start` event — the acceptance pins of the scenario
//! refactor.

use std::path::{Path, PathBuf};
use std::process::Command;

use griffin::fleet::{Event, JournalHeader, JOURNAL_FORMAT};
use griffin::sweep::json::Json;

const CLI: &str = env!("CARGO_BIN_EXE_griffin-cli");

fn repo_file(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("griffin-scenario-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], cwd: &Path) -> std::process::Output {
    let out = Command::new(CLI)
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn griffin-cli");
    assert!(
        out.status.success(),
        "`griffin-cli {}` failed:\n{}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn run_fail(args: &[&str], cwd: &Path) -> String {
    let out = Command::new(CLI)
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn griffin-cli");
    assert!(
        !out.status.success(),
        "`griffin-cli {}` unexpectedly succeeded",
        args.join(" ")
    );
    format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    )
}

#[test]
fn scenario_sweep_is_byte_identical_to_tokens_and_shares_the_cache() {
    let dir = scratch_dir("sweep");
    let scen = repo_file("scenarios/ci-smoke.toml");

    // Token spelling first, populating a shared disk cache.
    run(
        &[
            "sweep",
            "synth",
            "b",
            "--tiles",
            "2",
            "--seeds",
            "1",
            "--fanin",
            "3",
            "--workers",
            "2",
            "--cache",
            "warm",
            "--csv",
            "tok.csv",
            "--json",
            "tok.json",
        ],
        &dir,
    );
    // Scenario spelling against the warm cache: byte-identical reports,
    // 100% hits (the acceptance criterion of the scenario subsystem).
    let out = run(
        &[
            "sweep",
            "--scenario",
            &scen,
            "--workers",
            "2",
            "--cache",
            "warm",
            "--csv",
            "scen.csv",
            "--json",
            "scen.json",
        ],
        &dir,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("7 hits / 0 misses"),
        "warm cache must fully hit:\n{stdout}"
    );
    for (a, b) in [("tok.csv", "scen.csv"), ("tok.json", "scen.json")] {
        assert_eq!(
            std::fs::read(dir.join(a)).unwrap(),
            std::fs::read(dir.join(b)).unwrap(),
            "{a} and {b} must be byte-identical"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scenario_fleet_records_provenance_and_matches_sweep() {
    let dir = scratch_dir("fleet");
    let scen = repo_file("scenarios/ci-smoke.toml");

    run(
        &[
            "sweep",
            "synth",
            "b",
            "--tiles",
            "2",
            "--seeds",
            "1",
            "--fanin",
            "3",
            "--workers",
            "2",
            "--csv",
            "single.csv",
        ],
        &dir,
    );
    // ci-smoke.toml ships shards = 2, spawn = true: no fleet flags
    // needed.
    run(
        &[
            "fleet",
            "--scenario",
            &scen,
            "--dir",
            "fs",
            "--csv",
            "fleet.csv",
        ],
        &dir,
    );
    assert_eq!(
        std::fs::read(dir.join("single.csv")).unwrap(),
        std::fs::read(dir.join("fleet.csv")).unwrap(),
        "scenario fleet must be byte-identical to the token sweep"
    );

    // Journal header carries the provenance pair...
    let journal = std::fs::read_to_string(dir.join("fs/journal.jsonl")).unwrap();
    let header = Json::parse(journal.lines().next().unwrap()).unwrap();
    assert_eq!(
        header.req("format").unwrap().as_str().unwrap(),
        JOURNAL_FORMAT
    );
    assert_eq!(
        header.req("scenario_file").unwrap().as_str().unwrap(),
        "ci-smoke.toml"
    );
    let journal_fp = header
        .req("scenario_fp")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // ...and campaign_start carries the same pair.
    let events = std::fs::read_to_string(dir.join("fs/events.jsonl")).unwrap();
    let first = Event::parse_line(events.lines().next().unwrap()).unwrap();
    let Event::CampaignStart { scenario, .. } = first else {
        panic!("stream must open with campaign_start");
    };
    let prov = scenario.expect("scenario-launched campaign records provenance");
    assert_eq!(prov.file, "ci-smoke.toml");
    assert_eq!(prov.fp.to_string(), journal_fp);
    // It matches the fingerprint of the shipped file itself.
    let loaded = griffin::sweep::Scenario::load(&scen).unwrap();
    assert_eq!(prov.fp, loaded.fingerprint());
    for line in events.lines() {
        Event::parse_line(line).expect("every stream line parses");
    }

    // A token-mode resume of the scenario-written journal works (and
    // vice versa): provenance never blocks the grid identity.
    let plan = griffin::fleet::ShardPlan::new(&loaded.to_spec(), 2).unwrap();
    let token_header = JournalHeader {
        campaign: "sweep-synth-b".into(),
        spec_fp: plan.spec_fp,
        cells: 7,
        scenario: None,
    };
    griffin::fleet::Journal::peek_completed(dir.join("fs/journal.jsonl"), &token_header)
        .expect("token header must accept a scenario-written journal");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scenario_validate_show_and_diagnostics() {
    let dir = scratch_dir("validate");

    // The whole shipped library validates.
    let out = run(&["scenario", "validate", &repo_file("scenarios")], &dir);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scenario file(s) valid"), "{stdout}");
    assert!(stdout.contains("fig5-bert-b.toml"), "{stdout}");

    // show prints the grid and both fingerprints.
    let out = run(
        &["scenario", "show", &repo_file("scenarios/fig5-bert-b.toml")],
        &dir,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scenario `sweep-bert-b`"), "{stdout}");
    assert!(stdout.contains("spec fp"), "{stdout}");
    assert!(stdout.contains("canonical form:"), "{stdout}");

    // A malformed file fails validation with a line-anchored error.
    let bad = dir.join("bad.toml");
    std::fs::write(
        &bad,
        "[scenario]\nname = \"x\"\ncategories = [\"b\"]\n\n[[workload]]\nsuite = \"brt\"\n\
         \n[[arch]]\npreset = \"baseline\"\n",
    )
    .unwrap();
    let msg = run_fail(&["scenario", "validate", bad.to_str().unwrap()], &dir);
    assert!(msg.contains("line 6"), "{msg}");
    assert!(msg.contains("did you mean `bert`"), "{msg}");

    // Axis flags conflict with --scenario.
    let msg = run_fail(
        &[
            "sweep",
            "--scenario",
            &repo_file("scenarios/ci-smoke.toml"),
            "--seeds",
            "9",
        ],
        &dir,
    );
    assert!(msg.contains("--seeds conflicts with --scenario"), "{msg}");

    // Unknown tokens in the token spelling explain themselves.
    let msg = run_fail(&["sweep", "bertt", "b"], &dir);
    assert!(msg.contains("did you mean `bert`"), "{msg}");
    assert!(msg.contains("valid workloads"), "{msg}");
    std::fs::remove_dir_all(&dir).unwrap();
}
