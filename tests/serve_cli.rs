//! End-to-end tests of the resident serve daemon: a real `griffin-cli
//! serve` process on a unix socket, two concurrent wire clients
//! deduplicated onto one execution, reports byte-identical to a
//! standalone `sweep`, the socket-backed `fleet watch --connect`, the
//! `serve submit/status` client verbs, and the SIGINT drain.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use griffin::serve::{Client, ReportKind, ScenarioSource, ServeAddr, StreamOutcome};
use griffin::sweep::json::Json;

const CLI: &str = env!("CARGO_BIN_EXE_griffin-cli");
const SCENARIO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/ci-smoke.toml");

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("griffin-serve-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], cwd: &Path) -> std::process::Output {
    let out = Command::new(CLI)
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn griffin-cli");
    assert!(
        out.status.success(),
        "`griffin-cli {}` failed:\n{}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Starts `griffin-cli serve <dir>` and waits until its unix socket
/// accepts a handshake.
fn start_daemon(cwd: &Path, dir: &str) -> (Child, ServeAddr) {
    let child = Command::new(CLI)
        .args(["serve", dir])
        .current_dir(cwd)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve daemon");
    let addr = ServeAddr::Unix(cwd.join(dir).join("serve.sock"));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match Client::connect(&addr, "probe") {
            Ok(_) => return (child, addr),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("daemon never came up at {addr}: {e}"),
        }
    }
}

/// SIGINTs the daemon and returns its captured stderr; asserts a clean
/// (drained) exit.
fn stop_daemon(child: Child) -> String {
    let pid = child.id().to_string();
    assert!(Command::new("kill")
        .args(["-INT", &pid])
        .status()
        .unwrap()
        .success());
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "daemon must drain cleanly:\n{stderr}");
    stderr
}

fn consume(client: &mut Client) -> (Vec<String>, StreamOutcome) {
    let mut lines = Vec::new();
    let outcome = client
        .consume_stream(|_, ev| lines.push(ev.write()))
        .expect("stream to terminal");
    (lines, outcome)
}

#[test]
fn two_clients_one_execution_reports_identical_to_sweep() {
    let dir = scratch_dir("dedup");
    // Ground truth: the standalone sweep of the same scenario.
    run(
        &[
            "sweep",
            "--scenario",
            SCENARIO,
            "--workers",
            "2",
            "--csv",
            "single.csv",
        ],
        &dir,
    );
    let single = std::fs::read_to_string(dir.join("single.csv")).unwrap();

    let (child, addr) = start_daemon(&dir, "sd");
    let text = std::fs::read_to_string(SCENARIO).unwrap();
    let src = ScenarioSource::Inline(text);

    // Two clients, one execution: Bob submits while Alice's campaign
    // is in flight and gets attached to it.
    let mut alice = Client::connect(&addr, "alice").unwrap();
    let mut bob = Client::connect(&addr, "bob").unwrap();
    let acc_a = alice.submit(&src, None).unwrap();
    let acc_b = bob.submit(&src, None).unwrap();
    assert_eq!(acc_a.campaign, acc_b.campaign, "same fingerprint, one run");
    assert!(!acc_a.deduped);
    assert!(acc_b.deduped, "second submission rides the first");
    assert_eq!(acc_a.cells, 7);

    // Both streams drain concurrently and must be identical.
    let bob_thread = std::thread::spawn(move || {
        let got = consume(&mut bob);
        (bob, got)
    });
    let (lines_a, out_a) = consume(&mut alice);
    let (mut bob, (lines_b, out_b)) = bob_thread.join().unwrap();
    assert_eq!(out_a, StreamOutcome::Done);
    assert_eq!(out_b, StreamOutcome::Done);
    assert_eq!(lines_a, lines_b, "both clients see the identical stream");
    assert!(lines_a.iter().any(|l| l.contains("campaign_done")));

    // One execution — exactly one per-campaign journal directory.
    let dirs: Vec<_> = std::fs::read_dir(dir.join("sd/campaigns"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(dirs.len(), 1, "{dirs:?}");
    assert!(dirs[0].join("events.jsonl").is_file());

    // Both clients' reports are byte-identical to the standalone sweep.
    let csv_a = alice.report(&acc_a.campaign, ReportKind::Csv).unwrap();
    let csv_b = bob.report(&acc_b.campaign, ReportKind::Csv).unwrap();
    assert_eq!(csv_a, csv_b);
    assert_eq!(csv_a, single, "daemon report == standalone sweep");

    // The journaled stream works with the ordinary file-based tooling.
    let campaign_dir = dirs[0].to_str().unwrap().to_string();
    let watch = run(&["fleet", "watch", &campaign_dir, "--json"], &dir);
    let summary = Json::parse(
        String::from_utf8_lossy(&watch.stdout)
            .lines()
            .find(|l| l.contains("griffin-watch-summary/1"))
            .expect("summary line"),
    )
    .unwrap();
    assert_eq!(summary.req("state").unwrap().as_str().unwrap(), "done");
    assert_eq!(summary.req("done").unwrap().as_f64().unwrap(), 7.0);

    // Warm rerun of the finished fingerprint: a fresh campaign, served
    // entirely from the resident cache — no cell ever starts
    // simulating, and the report is still identical.
    let warm = alice.submit(&src, None).unwrap();
    assert_ne!(warm.campaign, acc_a.campaign);
    assert!(!warm.deduped, "a finished campaign is re-runnable");
    let (warm_lines, warm_out) = consume(&mut alice);
    assert_eq!(warm_out, StreamOutcome::Done);
    assert!(
        !warm_lines.iter().any(|l| l.contains("cell_start")),
        "warm rerun must not simulate: {warm_lines:?}"
    );
    let warm_csv = alice.report(&warm.campaign, ReportKind::Csv).unwrap();
    assert_eq!(warm_csv, single);

    // The socket-backed watcher replays the finished campaign and
    // exits on its terminal, same contract as the file watcher.
    let connected = run(
        &[
            "fleet",
            "watch",
            "--connect",
            &addr.to_string(),
            "--campaign",
            &warm.campaign,
            "--no-tty",
            "--interval",
            "25",
        ],
        &dir,
    );
    let stdout = String::from_utf8_lossy(&connected.stdout);
    assert!(
        stdout.lines().last().unwrap().contains("state=done"),
        "connected watch ends terminal: {stdout}"
    );

    // Status counters over the wire: 3 submissions, 1 deduplicated,
    // per-client attribution.
    let status_out = run(&["serve", "status", "--connect", &addr.to_string()], &dir);
    let status = Json::parse(String::from_utf8_lossy(&status_out.stdout).trim()).unwrap();
    assert_eq!(
        status.req("format").unwrap().as_str().unwrap(),
        "griffin-serve-status/1"
    );
    assert_eq!(status.req("submissions").unwrap().as_f64().unwrap(), 3.0);
    assert_eq!(status.req("deduped").unwrap().as_f64().unwrap(), 1.0);
    assert_eq!(
        status.req("campaigns_served").unwrap().as_f64().unwrap(),
        2.0
    );
    let clients = status.req("clients").unwrap();
    assert!(clients.get("alice").is_some() && clients.get("bob").is_some());

    let stderr = stop_daemon(child);
    assert!(stderr.contains("draining"), "drain announced: {stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_submit_verb_fetches_sweep_identical_reports() {
    let dir = scratch_dir("verb");
    run(
        &[
            "sweep",
            "--scenario",
            SCENARIO,
            "--workers",
            "2",
            "--csv",
            "single.csv",
        ],
        &dir,
    );
    let (child, addr) = start_daemon(&dir, "sd");

    let submit = run(
        &[
            "serve",
            "submit",
            SCENARIO,
            "--connect",
            &addr.to_string(),
            "--csv",
            "daemon.csv",
            "--json",
            "daemon.json",
            "--quiet",
        ],
        &dir,
    );
    assert!(
        String::from_utf8_lossy(&submit.stdout).contains("done: 7 cells"),
        "{submit:?}"
    );
    let single = std::fs::read_to_string(dir.join("single.csv")).unwrap();
    let daemon_csv = std::fs::read_to_string(dir.join("daemon.csv")).unwrap();
    assert_eq!(daemon_csv, single, "serve submit --csv == standalone sweep");
    assert!(dir.join("daemon.json").is_file());

    stop_daemon(child);
    std::fs::remove_dir_all(&dir).unwrap();
}
